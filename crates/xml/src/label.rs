//! String labels over the underlying domain `D`.
//!
//! The paper's domain `D` "includes all string-like data, i.e., element
//! names, character content, and attribute names/values" (§2, footnote 4).
//! We represent every member of `D` as a [`Label`]: a reference-counted
//! immutable string, cheap to clone and hash.

use std::borrow::Borrow;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A member of the underlying domain `D`: an element name or atomic content.
///
/// `Label` is an `Arc<str>` newtype: cloning is a reference-count bump, so
/// labels can be freely duplicated into node-ids, caches and group keys
/// without copying string data.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Arc<str>);

impl Label {
    /// Create a label from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Label(Arc::from(s.as_ref()))
    }

    /// The label's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Byte length of the label; used by the granularity cost model to
    /// approximate wire sizes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the label is the empty string.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The reserved label marking holes in open trees (`hole` in Def. 3).
    /// All calls share one allocation — fills mint these by the thousand.
    pub fn hole() -> Self {
        static HOLE: OnceLock<Label> = OnceLock::new();
        HOLE.get_or_init(|| Label::new(RESERVED_HOLE)).clone()
    }

    /// The reserved label used by the algebra for explicit lists
    /// (the `list` label of the `groupBy`/`concatenate` operators, §3).
    pub fn list() -> Self {
        static LIST: OnceLock<Label> = OnceLock::new();
        LIST.get_or_init(|| Label::new(RESERVED_LIST)).clone()
    }

    /// The reserved label of a binding-list root (`bs[...]`, §3).
    pub fn bs() -> Self {
        static BS: OnceLock<Label> = OnceLock::new();
        BS.get_or_init(|| Label::new(RESERVED_BS)).clone()
    }

    /// The reserved label of a single variable binding (`b[...]`, §3).
    pub fn b() -> Self {
        static B: OnceLock<Label> = OnceLock::new();
        B.get_or_init(|| Label::new(RESERVED_B)).clone()
    }

    /// Attempt to read the label as an integer (for value predicates).
    pub fn as_int(&self) -> Option<i64> {
        self.0.trim().parse().ok()
    }

    /// Attempt to read the label as a float (for value predicates).
    pub fn as_float(&self) -> Option<f64> {
        self.0.trim().parse().ok()
    }
}

/// Label of the virtual document node above each source's root element.
/// XMAS paths consume the root element's label as their first step, so
/// sources bind a node *above* it; `#` is not a path character, so no
/// path can name this node.
pub const DOC_LABEL: &str = "#document";

/// Reserved name for holes in open trees (Def. 3: "`hole` ∈ D is a reserved
/// name").
pub const RESERVED_HOLE: &str = "hole";
/// Reserved name for list values produced by `groupBy`/`concatenate`.
pub const RESERVED_LIST: &str = "list";
/// Reserved name for binding-list roots.
pub const RESERVED_BS: &str = "bs";
/// Reserved name for individual bindings.
pub const RESERVED_B: &str = "b";

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Arc::from(s))
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Label::new(s)
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn label_roundtrip() {
        let l = Label::new("home");
        assert_eq!(l.as_str(), "home");
        assert_eq!(l, "home");
        assert_eq!(l.to_string(), "home");
    }

    #[test]
    fn clone_is_shared() {
        let l = Label::new("zip");
        let m = l.clone();
        assert_eq!(l, m);
        // Same allocation: Arc pointer equality.
        assert!(Arc::ptr_eq(&l.0, &m.0));
    }

    #[test]
    fn reserved_labels() {
        assert_eq!(Label::hole(), "hole");
        assert_eq!(Label::list(), "list");
        assert_eq!(Label::bs(), "bs");
        assert_eq!(Label::b(), "b");
    }

    #[test]
    fn reserved_labels_share_one_allocation() {
        assert!(Arc::ptr_eq(&Label::hole().0, &Label::hole().0));
        assert!(Arc::ptr_eq(&Label::list().0, &Label::list().0));
        assert!(Arc::ptr_eq(&Label::bs().0, &Label::bs().0));
        assert!(Arc::ptr_eq(&Label::b().0, &Label::b().0));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Label::new("91220").as_int(), Some(91220));
        assert_eq!(Label::new(" 42 ").as_int(), Some(42));
        assert_eq!(Label::new("La Jolla").as_int(), None);
        assert_eq!(Label::new("3.5").as_float(), Some(3.5));
        assert_eq!(Label::new("3.5").as_int(), None);
    }

    #[test]
    fn works_as_hash_key_borrowed_by_str() {
        let mut set = HashSet::new();
        set.insert(Label::new("school"));
        assert!(set.contains("school"));
        assert!(!set.contains("home"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Label::new("a") < Label::new("b"));
        assert!(Label::new("abc") < Label::new("abd"));
    }

    #[test]
    fn empty_label() {
        let l = Label::new("");
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
    }
}
