//! The recursive tree value `T = D | D[T*]`.

use crate::label::Label;
use std::fmt;

/// A labeled ordered tree (§2): either a leaf `d ∈ D` or `d[t1,…,tn]`.
///
/// A leaf is represented as a node whose child list is empty; in XML
/// parlance a leaf is either character content or an empty element — the
/// paper's abstraction does not distinguish the two and neither do we.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    label: Label,
    children: Vec<Tree>,
}

impl Tree {
    /// A leaf `d`.
    pub fn leaf(label: impl Into<Label>) -> Self {
        Tree { label: label.into(), children: Vec::new() }
    }

    /// An inner node `d[t1,…,tn]` (also fine with `n = 0`, which is a leaf).
    pub fn node(label: impl Into<Label>, children: Vec<Tree>) -> Self {
        Tree { label: label.into(), children }
    }

    /// The node's label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The ordered list of subtrees.
    pub fn children(&self) -> &[Tree] {
        &self.children
    }

    /// Mutable access to the child list (used by builders and by the buffer
    /// component when filling holes).
    pub fn children_mut(&mut self) -> &mut Vec<Tree> {
        &mut self.children
    }

    /// True if this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Append a child, returning `self` for builder-style chaining.
    pub fn with_child(mut self, child: Tree) -> Self {
        self.children.push(child);
        self
    }

    /// Number of nodes in the whole tree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Tree::size).sum::<usize>()
    }

    /// Height of the tree: a leaf has height 0.
    pub fn height(&self) -> usize {
        self.children.iter().map(|c| 1 + c.height()).max().unwrap_or(0)
    }

    /// Pre-order depth-first iterator over all nodes.
    pub fn iter_dfs(&self) -> Dfs<'_> {
        Dfs { stack: vec![self] }
    }

    /// Concatenated text of all leaf labels, in document order. The usual
    /// "string value" of an element.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        if self.is_leaf() {
            out.push_str(self.label.as_str());
        } else {
            for c in &self.children {
                c.collect_text(out);
            }
        }
    }

    /// First child with the given label, if any. Convenience for tests and
    /// examples navigating materialized results.
    pub fn child(&self, label: &str) -> Option<&Tree> {
        self.children.iter().find(|c| c.label() == label)
    }

    /// All children with the given label.
    pub fn children_labeled<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Tree> + 'a {
        self.children.iter().filter(move |c| c.label() == label)
    }

    /// Canonical serialization: a deterministic string uniquely identifying
    /// the tree value. Used by the engine for value-based group keys
    /// (DESIGN.md substitution for the paper's lineage-based node identity).
    ///
    /// Labels are length-prefixed so no quoting/escaping ambiguity exists:
    /// `a[b,c]` canonicalizes to `1:a(1:b()1:c())`.
    pub fn canonical(&self) -> String {
        let mut out = String::with_capacity(self.size() * 8);
        self.canonical_into(&mut out);
        out
    }

    /// Append the canonical serialization to `out` — lets callers building
    /// composite keys (groupBy, difference) reuse one buffer instead of
    /// allocating an intermediate `String` per component.
    pub fn canonical_into(&self, out: &mut String) {
        use std::fmt::Write;
        let s = self.label.as_str();
        let _ = write!(out, "{}:{}(", s.len(), s);
        for c in &self.children {
            c.canonical_into(out);
        }
        out.push(')');
    }
}

/// Pre-order DFS iterator, see [`Tree::iter_dfs`].
pub struct Dfs<'a> {
    stack: Vec<&'a Tree>,
}

impl<'a> Iterator for Dfs<'a> {
    type Item = &'a Tree;

    fn next(&mut self) -> Option<&'a Tree> {
        let t = self.stack.pop()?;
        // Push children in reverse so the leftmost child pops first.
        self.stack.extend(t.children.iter().rev());
        Some(t)
    }
}

// Both Debug and Display render the paper's term syntax (`a[b,c]`).
impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::term::to_term(self))
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::term::to_term(self))
    }
}

/// Build a [`Tree`] with term-like syntax:
///
/// ```
/// use mix_xml::tree;
/// let t = tree!("home" => [tree!("addr" => [tree!("La Jolla")]),
///                          tree!("zip" => [tree!("91220")])]);
/// assert_eq!(t.to_string(), "home[addr[La Jolla],zip[91220]]");
/// ```
#[macro_export]
macro_rules! tree {
    ($label:expr) => {
        $crate::Tree::leaf($label)
    };
    ($label:expr => [ $($child:expr),* $(,)? ]) => {
        $crate::Tree::node($label, vec![ $($child),* ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // a[b[d,e],c]  — the tree of the paper's Example 7.
        tree!("a" => [tree!("b" => [tree!("d"), tree!("e")]), tree!("c")])
    }

    #[test]
    fn leaf_and_node_basics() {
        let l = Tree::leaf("x");
        assert!(l.is_leaf());
        assert_eq!(l.label(), "x");
        assert_eq!(l.size(), 1);
        assert_eq!(l.height(), 0);

        let t = sample();
        assert!(!t.is_leaf());
        assert_eq!(t.size(), 5);
        assert_eq!(t.height(), 2);
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn dfs_is_preorder() {
        let t = sample();
        let labels: Vec<&str> = t.iter_dfs().map(|n| n.label().as_str()).collect();
        assert_eq!(labels, ["a", "b", "d", "e", "c"]);
    }

    #[test]
    fn text_concatenates_leaves() {
        let t = tree!("home" => [
            tree!("addr" => [tree!("La Jolla")]),
            tree!("zip" => [tree!("91220")]),
        ]);
        assert_eq!(t.text(), "La Jolla91220");
        assert_eq!(t.child("zip").unwrap().text(), "91220");
    }

    #[test]
    fn child_lookup() {
        let t = sample();
        assert_eq!(t.child("c").unwrap().label(), "c");
        assert!(t.child("zzz").is_none());
        assert_eq!(t.children_labeled("b").count(), 1);
    }

    #[test]
    fn canonical_distinguishes_structure() {
        // `a[bc]` vs `a[b,c]` vs `a[b[c]]` must all differ.
        let t1 = tree!("a" => [tree!("bc")]);
        let t2 = tree!("a" => [tree!("b"), tree!("c")]);
        let t3 = tree!("a" => [tree!("b" => [tree!("c")])]);
        assert_ne!(t1.canonical(), t2.canonical());
        assert_ne!(t2.canonical(), t3.canonical());
        assert_ne!(t1.canonical(), t3.canonical());
    }

    #[test]
    fn canonical_is_deterministic_and_value_based() {
        let t = sample();
        let u = sample();
        assert_eq!(t.canonical(), u.canonical());
    }

    #[test]
    fn canonical_handles_meta_characters() {
        // Labels containing the canonical syntax's own characters are safe
        // thanks to length prefixes.
        let tricky = tree!("a(1:b" => [tree!(")")]);
        let plain = tree!("a" => [tree!("1:b()")]);
        assert_ne!(tricky.canonical(), plain.canonical());
    }

    #[test]
    fn with_child_builder() {
        let t = Tree::leaf("r").with_child(Tree::leaf("x")).with_child(Tree::leaf("y"));
        assert_eq!(t.to_string(), "r[x,y]");
    }

    #[test]
    fn display_uses_term_syntax() {
        assert_eq!(sample().to_string(), "a[b[d,e],c]");
        assert_eq!(format!("{:?}", Tree::leaf("q")), "q");
    }
}
