//! The paper's term syntax for trees: `a[b[d,e],c]`.
//!
//! Every example in the paper writes trees this way
//! (`bs[ b[ H[home[...]], V1[91220] ] ]`, `r[a,◦2]`, …). We use the same
//! syntax in tests, fixtures, and `Display` output, so code can be checked
//! against the paper line by line.
//!
//! Grammar:
//!
//! ```text
//! tree   ::= label | label '[' trees? ']'
//! trees  ::= tree (',' tree)*
//! label  ::= bare | quoted
//! bare   ::= [^\[\],'"]+        (trimmed; may contain spaces, e.g. "La Jolla")
//! quoted ::= '"' ([^"\\] | '\\' any)* '"'
//! ```
//!
//! Bare labels are trimmed of surrounding whitespace so that
//! `a[ b , c ]` parses like `a[b,c]`. Labels that contain `[`, `]`, `,`
//! or leading/trailing spaces must be quoted.

use crate::label::Label;
use crate::tree::Tree;
use crate::ParseError;

/// Parse a tree from term syntax.
pub fn parse_term(input: &str) -> Result<Tree, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let t = p.tree()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(ParseError::new(p.pos, "trailing input after tree"));
    }
    Ok(t)
}

/// Parse a comma-separated list of trees (useful for LXP fragment lists,
/// e.g. `b[◦2],◦3`).
pub fn parse_term_list(input: &str) -> Result<Vec<Tree>, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    if p.pos == p.input.len() {
        return Ok(Vec::new());
    }
    let mut out = vec![p.tree()?];
    p.skip_ws();
    while p.eat(',') {
        p.skip_ws();
        out.push(p.tree()?);
        p.skip_ws();
    }
    if p.pos != p.input.len() {
        return Err(ParseError::new(p.pos, "trailing input after tree list"));
    }
    Ok(out)
}

/// Render a tree in term syntax.
pub fn to_term(t: &Tree) -> String {
    let mut out = String::with_capacity(t.size() * 8);
    write_term(t, &mut out);
    out
}

fn write_term(t: &Tree, out: &mut String) {
    write_label(t.label(), out);
    if !t.is_leaf() {
        out.push('[');
        for (i, c) in t.children().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_term(c, out);
        }
        out.push(']');
    }
}

fn write_label(l: &Label, out: &mut String) {
    let s = l.as_str();
    let needs_quote = s.is_empty()
        || s.starts_with(char::is_whitespace)
        || s.ends_with(char::is_whitespace)
        || s.contains(['[', ']', ',', '"']);
    if needs_quote {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' || ch == '\\' {
                out.push('\\');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn tree(&mut self) -> Result<Tree, ParseError> {
        let label = self.label()?;
        self.skip_ws();
        if self.eat('[') {
            self.skip_ws();
            let mut children = Vec::new();
            if !self.eat(']') {
                loop {
                    children.push(self.tree()?);
                    self.skip_ws();
                    if self.eat(']') {
                        break;
                    }
                    if !self.eat(',') {
                        return Err(ParseError::new(self.pos, "expected ',' or ']'"));
                    }
                    self.skip_ws();
                }
            }
            Ok(Tree::node(label, children))
        } else {
            Ok(Tree::leaf(label))
        }
    }

    fn label(&mut self) -> Result<Label, ParseError> {
        if self.eat('"') {
            let mut s = String::new();
            loop {
                match self.bump() {
                    None => return Err(ParseError::new(self.pos, "unterminated quoted label")),
                    Some('"') => break,
                    Some('\\') => match self.bump() {
                        Some(c) => s.push(c),
                        None => {
                            return Err(ParseError::new(self.pos, "unterminated escape"));
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
            Ok(Label::new(s))
        } else {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if !['[', ']', ',', '"'].contains(&c)) {
                self.bump();
            }
            let raw = self.input[start..self.pos].trim();
            if raw.is_empty() {
                return Err(ParseError::new(start, "expected a label"));
            }
            Ok(Label::new(raw))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    #[test]
    fn parses_paper_example_7_tree() {
        // t = a[b[d,e],c]
        let t = parse_term("a[b[d,e],c]").unwrap();
        assert_eq!(t, tree!("a" => [tree!("b" => [tree!("d"), tree!("e")]), tree!("c")]));
    }

    #[test]
    fn roundtrip_simple() {
        for s in ["x", "a[b]", "a[b,c]", "bs[b[H[home[addr[El Cajon],zip[91223]]]]]"] {
            let t = parse_term(s).unwrap();
            assert_eq!(to_term(&t), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn labels_with_spaces() {
        let t = parse_term("addr[La Jolla]").unwrap();
        assert_eq!(t.children()[0].label(), "La Jolla");
        // Interior spaces survive a print/parse roundtrip unquoted.
        assert_eq!(parse_term(&to_term(&t)).unwrap(), t);
    }

    #[test]
    fn whitespace_tolerant() {
        let a = parse_term("a[ b , c[ d ] ]").unwrap();
        let b = parse_term("a[b,c[d]]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_labels() {
        let t = parse_term(r#""a,b"["x[y]", "say \"hi\""]"#).unwrap();
        assert_eq!(t.label(), "a,b");
        assert_eq!(t.children()[0].label(), "x[y]");
        assert_eq!(t.children()[1].label(), "say \"hi\"");
        // And the printer quotes them back.
        assert_eq!(parse_term(&to_term(&t)).unwrap(), t);
    }

    #[test]
    fn empty_child_list_is_leaf() {
        let t = parse_term("a[]").unwrap();
        assert!(t.is_leaf());
        assert_eq!(to_term(&t), "a");
    }

    #[test]
    fn errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("a[b").is_err());
        assert!(parse_term("a]").is_err());
        assert!(parse_term("a[b,]").is_err());
        assert!(parse_term("a b[c] d[e]").is_err()); // would need quoting
        assert!(parse_term(r#""unterminated"#).is_err());
    }

    #[test]
    fn parse_list() {
        let l = parse_term_list("b[x],c,d[e]").unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[1].label(), "c");
        assert_eq!(parse_term_list("").unwrap(), Vec::new());
        assert_eq!(parse_term_list("  ").unwrap(), Vec::new());
    }
}
