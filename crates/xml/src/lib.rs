//! # mix-xml — labeled ordered trees
//!
//! The data model of the MIX mediator (Ludäscher, Papakonstantinou, Velikhov,
//! EDBT 2000, §2). XML documents are abstracted as *labeled ordered trees*
//! over a domain `D` of string-like data:
//!
//! ```text
//! T = D | D[T*]
//! ```
//!
//! A tree is either a leaf (an atomic piece of data) or a label together with
//! an ordered list of subtrees. Attributes are excluded, exactly as in the
//! paper's abstraction (its footnote 3 defers attribute handling to the
//! system description).
//!
//! This crate provides:
//!
//! * [`Label`] — cheaply clonable string labels,
//! * [`Tree`] — the owned recursive tree value,
//! * [`Document`] — a flat arena representation with stable [`NodeId`]s and
//!   `first_child` / `next_sibling` links, the natural substrate for the
//!   `d` / `r` / `f` navigation commands of DOM-VXD,
//! * parsing and printing for both the paper's *term syntax*
//!   (`a[b[d,e],c]`, used throughout the paper's examples) and a minimal
//!   XML surface syntax,
//! * canonical serialization used by the engine for value-based grouping.

pub mod document;
pub mod label;
pub mod term;
pub mod tree;
pub mod xmlio;

pub use document::{Document, NodeId};
pub use label::{Label, DOC_LABEL};
pub use tree::Tree;

/// Errors produced while parsing term- or XML-syntax documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError { offset, message: message.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}
