//! Arena-backed documents with stable node-ids.
//!
//! DOM-VXD navigation (`d` = first child, `r` = right sibling, `f` = label)
//! maps directly onto a first-child/next-sibling representation. A
//! [`Document`] stores every node of a tree in one flat arena; [`NodeId`]s
//! are indices into it and remain valid for the document's lifetime, which
//! is what the paper's navigations require ("an incoming navigation command
//! `c(p)` may involve any previously encountered pointer `p`", §3).

use crate::label::Label;
use crate::tree::Tree;

/// Identifier of a node inside a [`Document`]. Stable for the document's
/// lifetime; cheap to copy and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// The root node of every document.
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index (useful for encoding into wrapper hole-ids).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a raw index. The caller must know the index is valid
    /// for the target document; out-of-range ids make navigation panic.
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("document too large for u32 node ids"))
    }
}

#[derive(Debug, Clone)]
struct Node {
    label: Label,
    first_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
    parent: Option<NodeId>,
}

/// An immutable tree flattened into an arena, supporting O(1) `down`,
/// `right`, and `fetch`.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Flatten an owned [`Tree`] into a document. Node 0 is the root and
    /// children receive consecutive ids in pre-order.
    pub fn from_tree(tree: &Tree) -> Self {
        let mut doc = Document { nodes: Vec::with_capacity(tree.size()) };
        doc.add_subtree(tree, None);
        doc
    }

    fn add_subtree(&mut self, t: &Tree, parent: Option<NodeId>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            label: t.label().clone(),
            first_child: None,
            next_sibling: None,
            parent,
        });
        let mut prev: Option<NodeId> = None;
        for child in t.children() {
            let cid = self.add_subtree(child, Some(id));
            match prev {
                None => self.nodes[id.index()].first_child = Some(cid),
                Some(p) => self.nodes[p.index()].next_sibling = Some(cid),
            }
            prev = Some(cid);
        }
        id
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document is empty. (A document built from a tree is
    /// never empty — the root always exists.)
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `d(p)`: first child of `p`, or `None` if `p` is a leaf.
    pub fn down(&self, p: NodeId) -> Option<NodeId> {
        self.nodes[p.index()].first_child
    }

    /// `r(p)`: right sibling of `p`, or `None`.
    pub fn right(&self, p: NodeId) -> Option<NodeId> {
        self.nodes[p.index()].next_sibling
    }

    /// `f(p)`: the label of `p`.
    pub fn fetch(&self, p: NodeId) -> &Label {
        &self.nodes[p.index()].label
    }

    /// Parent of `p` (not part of DOM-VXD; used by wrappers and tests).
    pub fn parent(&self, p: NodeId) -> Option<NodeId> {
        self.nodes[p.index()].parent
    }

    /// Iterate the children of `p` in order.
    pub fn children(&self, p: NodeId) -> ChildIter<'_> {
        ChildIter { doc: self, next: self.down(p) }
    }

    /// Number of nodes in the subtree rooted at `p`, without building a
    /// [`Tree`]. Node ids are assigned in pre-order, so a subtree is the
    /// contiguous id range `[p, next node outside p's subtree)` — the
    /// bound is found by walking up to the first ancestor-or-self with a
    /// right sibling, making this O(depth), allocation-free.
    pub fn subtree_len(&self, p: NodeId) -> usize {
        let mut q = p;
        loop {
            if let Some(r) = self.right(q) {
                return r.index() - p.index();
            }
            match self.parent(q) {
                Some(par) => q = par,
                None => return self.len() - p.index(),
            }
        }
    }

    /// Rebuild the subtree rooted at `p` as an owned [`Tree`].
    pub fn subtree(&self, p: NodeId) -> Tree {
        let children = self.children(p).map(|c| self.subtree(c)).collect();
        Tree::node(self.fetch(p).clone(), children)
    }

    /// Rebuild the whole document as an owned [`Tree`].
    pub fn to_tree(&self) -> Tree {
        self.subtree(self.root())
    }
}

impl From<&Tree> for Document {
    fn from(t: &Tree) -> Self {
        Document::from_tree(t)
    }
}

impl From<Tree> for Document {
    fn from(t: Tree) -> Self {
        Document::from_tree(&t)
    }
}

/// Iterator over the children of one node.
pub struct ChildIter<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for ChildIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.right(id);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term;

    fn doc(s: &str) -> Document {
        Document::from_tree(&parse_term(s).unwrap())
    }

    #[test]
    fn navigation_matches_paper_semantics() {
        let d = doc("a[b[d,e],c]");
        let root = d.root();
        assert_eq!(d.fetch(root), "a");

        // d(root) = first child b
        let b = d.down(root).unwrap();
        assert_eq!(d.fetch(b), "b");
        // r(b) = c
        let c = d.right(b).unwrap();
        assert_eq!(d.fetch(c), "c");
        // r(c) = ⊥
        assert_eq!(d.right(c), None);
        // d on a leaf = ⊥  ("if p is a leaf then d(p) = ⊥")
        assert_eq!(d.down(c), None);

        let dd = d.down(b).unwrap();
        assert_eq!(d.fetch(dd), "d");
        let e = d.right(dd).unwrap();
        assert_eq!(d.fetch(e), "e");
        assert_eq!(d.right(e), None);
    }

    #[test]
    fn parents() {
        let d = doc("a[b[d,e],c]");
        let b = d.down(d.root()).unwrap();
        let dn = d.down(b).unwrap();
        assert_eq!(d.parent(dn), Some(b));
        assert_eq!(d.parent(b), Some(d.root()));
        assert_eq!(d.parent(d.root()), None);
    }

    #[test]
    fn children_iterator() {
        let d = doc("r[x,y,z]");
        let labels: Vec<String> =
            d.children(d.root()).map(|c| d.fetch(c).to_string()).collect();
        assert_eq!(labels, ["x", "y", "z"]);
        // Leaf has no children.
        let x = d.down(d.root()).unwrap();
        assert_eq!(d.children(x).count(), 0);
    }

    #[test]
    fn roundtrip_tree_document_tree() {
        let t = parse_term("view[tuple[att1[v11],att2[v12]],tuple[att1[v21],att2[v22]]]").unwrap();
        let d = Document::from_tree(&t);
        assert_eq!(d.to_tree(), t);
        assert_eq!(d.len(), t.size());
    }

    #[test]
    fn subtree_extraction() {
        let d = doc("a[b[d,e],c]");
        let b = d.down(d.root()).unwrap();
        assert_eq!(d.subtree(b).to_string(), "b[d,e]");
    }

    #[test]
    fn subtree_len_matches_materialized_size() {
        let d = doc("a[b[d,e[f,g]],c[h]]");
        for i in 0..d.len() {
            let p = NodeId::from_index(i);
            assert_eq!(d.subtree_len(p), d.subtree(p).size(), "node {i}");
        }
    }

    #[test]
    fn node_ids_are_preorder() {
        let d = doc("a[b[d,e],c]");
        // Pre-order: a=0, b=1, d=2, e=3, c=4.
        assert_eq!(d.fetch(NodeId::from_index(0)), "a");
        assert_eq!(d.fetch(NodeId::from_index(1)), "b");
        assert_eq!(d.fetch(NodeId::from_index(2)), "d");
        assert_eq!(d.fetch(NodeId::from_index(3)), "e");
        assert_eq!(d.fetch(NodeId::from_index(4)), "c");
    }

    #[test]
    fn single_node_document() {
        let d = doc("only");
        assert_eq!(d.len(), 1);
        assert_eq!(d.down(d.root()), None);
        assert_eq!(d.right(d.root()), None);
    }
}
