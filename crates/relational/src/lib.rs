//! # mix-relational — in-memory relational database substrate
//!
//! The paper's relational wrapper (§4, Example 5) sits on a JDBC database
//! and translates XMAS queries into SQL, advancing a *relational cursor*
//! tuple-at-a-time. This crate is the stand-in for that database: a small
//! but real in-memory RDBMS with typed schemas, tables, scans and stateful
//! cursors — exactly the surface the LXP relational wrapper needs
//! (`mix-wrappers::relational`).
//!
//! The deliberate design constraint: the wrapper above must behave like
//! the paper's ("initiate the necessary updates to the relational cursor,
//! based on the form of the \[hole\] id"), so the API is cursor-centric.

pub mod cursor;
pub mod db;
pub mod query;
pub mod table;
pub mod value;

pub use cursor::Cursor;
pub use db::Database;
pub use query::{SqlCond, SqlOp, SqlQuery};
pub use table::{Column, Row, Table, TableSchema};
pub use value::{DataType, Value};

/// Errors from schema violations and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbError {
    /// Description of the problem.
    pub message: String,
}

impl DbError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        DbError { message: message.into() }
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "database error: {}", self.message)
    }
}

impl std::error::Error for DbError {}
