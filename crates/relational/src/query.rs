//! A minimal SELECT layer — the SQL the relational wrapper "translates a
//! XMAS query into" (paper Example 5).
//!
//! Deliberately tiny: conjunctive comparisons against literals plus
//! projection, executed through the same cursors the wrapper uses. The
//! point is architectural fidelity (the wrapper pushes work into the
//! database and exports the *query result* as its XML view, Fig. 6), not
//! SQL coverage.

use crate::table::{Row, Table};
use crate::value::Value;
use crate::DbError;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators of the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOp {
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
}

impl SqlOp {
    fn eval(self, ord: Ordering) -> bool {
        match self {
            SqlOp::Lt => ord == Ordering::Less,
            SqlOp::Le => ord != Ordering::Greater,
            SqlOp::Eq => ord == Ordering::Equal,
            SqlOp::Ne => ord != Ordering::Equal,
            SqlOp::Ge => ord != Ordering::Less,
            SqlOp::Gt => ord == Ordering::Greater,
        }
    }
}

impl fmt::Display for SqlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SqlOp::Lt => "<",
            SqlOp::Le => "<=",
            SqlOp::Eq => "=",
            SqlOp::Ne => "<>",
            SqlOp::Ge => ">=",
            SqlOp::Gt => ">",
        })
    }
}

/// One conjunct: `column op literal`.
#[derive(Debug, Clone)]
pub struct SqlCond {
    pub column: String,
    pub op: SqlOp,
    pub value: Value,
}

/// `SELECT projection FROM table WHERE conds…` (conjunctive).
#[derive(Debug, Clone)]
pub struct SqlQuery {
    /// The table scanned.
    pub table: String,
    /// Projected columns in output order; empty = `*`.
    pub projection: Vec<String>,
    /// Conjunctive WHERE clause.
    pub conds: Vec<SqlCond>,
}

impl SqlQuery {
    /// `SELECT * FROM table`.
    pub fn scan(table: impl Into<String>) -> Self {
        SqlQuery { table: table.into(), projection: Vec::new(), conds: Vec::new() }
    }

    /// Add a WHERE conjunct.
    pub fn filter(mut self, column: impl Into<String>, op: SqlOp, value: impl Into<Value>) -> Self {
        self.conds.push(SqlCond { column: column.into(), op, value: value.into() });
        self
    }

    /// Project to the given columns.
    pub fn select(mut self, columns: &[&str]) -> Self {
        self.projection = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// The output column names against a table schema.
    pub fn output_columns(&self, table: &Table) -> Result<Vec<String>, DbError> {
        if self.projection.is_empty() {
            return Ok(table.schema().columns.iter().map(|c| c.name.clone()).collect());
        }
        for c in &self.projection {
            if table.schema().col_index(c).is_none() {
                return Err(DbError::new(format!("no column `{c}` in {}", self.table)));
            }
        }
        Ok(self.projection.clone())
    }

    /// Does a row satisfy the WHERE clause?
    pub fn matches(&self, table: &Table, row: &Row) -> Result<bool, DbError> {
        for cond in &self.conds {
            let i = table
                .schema()
                .col_index(&cond.column)
                .ok_or_else(|| DbError::new(format!("no column `{}`", cond.column)))?;
            if !cond.op.eval(row[i].sql_cmp(&cond.value)) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Project one row to the output columns.
    pub fn project_row(&self, table: &Table, row: &Row) -> Result<Row, DbError> {
        if self.projection.is_empty() {
            return Ok(row.clone());
        }
        self.projection
            .iter()
            .map(|c| {
                table
                    .schema()
                    .col_index(c)
                    .map(|i| row[i].clone())
                    .ok_or_else(|| DbError::new(format!("no column `{c}`")))
            })
            .collect()
    }

    /// Execute against a table: the materialized result rows.
    pub fn run(&self, table: &Table) -> Result<Vec<Row>, DbError> {
        let mut out = Vec::new();
        for row in table.scan() {
            if self.matches(table, row)? {
                out.push(self.project_row(table, row)?);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for SqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.projection.is_empty() {
            write!(f, "*")?;
        } else {
            write!(f, "{}", self.projection.join(", "))?;
        }
        write!(f, " FROM {}", self.table)?;
        for (i, c) in self.conds.iter().enumerate() {
            write!(f, " {} {} {} ", if i == 0 { "WHERE" } else { "AND" }, c.column, c.op)?;
            match &c.value {
                Value::Text(s) => write!(f, "'{s}'")?,
                other => write!(f, "{other}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, TableSchema};
    use crate::value::DataType;

    fn homes() -> Table {
        let mut t = Table::new(TableSchema::new(
            "homes",
            vec![
                Column::new("addr", DataType::Text),
                Column::new("zip", DataType::Int),
                Column::new("price", DataType::Int),
            ],
        ));
        t.insert(vec!["La Jolla".into(), 91220.into(), 950_000.into()]).unwrap();
        t.insert(vec!["El Cajon".into(), 91223.into(), 450_000.into()]).unwrap();
        t.insert(vec!["Santee".into(), 91220.into(), 280_000.into()]).unwrap();
        t
    }

    #[test]
    fn scan_all() {
        let t = homes();
        let rows = SqlQuery::scan("homes").run(&t).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn conjunctive_filter() {
        let t = homes();
        let q = SqlQuery::scan("homes")
            .filter("zip", SqlOp::Eq, 91220)
            .filter("price", SqlOp::Lt, 500_000);
        let rows = q.run(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].to_string(), "Santee");
    }

    #[test]
    fn projection() {
        let t = homes();
        let q = SqlQuery::scan("homes").select(&["price", "addr"]);
        let rows = q.run(&t).unwrap();
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][0].to_string(), "950000");
        assert_eq!(rows[0][1].to_string(), "La Jolla");
        assert_eq!(
            q.output_columns(&t).unwrap(),
            vec!["price".to_string(), "addr".to_string()]
        );
    }

    #[test]
    fn text_comparison_and_errors() {
        let t = homes();
        let q = SqlQuery::scan("homes").filter("addr", SqlOp::Eq, "Santee");
        assert_eq!(q.run(&t).unwrap().len(), 1);
        let bad = SqlQuery::scan("homes").filter("nope", SqlOp::Eq, 1);
        assert!(bad.run(&t).is_err());
        let badp = SqlQuery::scan("homes").select(&["nope"]);
        assert!(badp.output_columns(&t).is_err());
    }

    #[test]
    fn display_renders_sql() {
        let q = SqlQuery::scan("homes")
            .select(&["addr"])
            .filter("zip", SqlOp::Eq, 91220)
            .filter("addr", SqlOp::Ne, "X");
        assert_eq!(
            q.to_string(),
            "SELECT addr FROM homes WHERE zip = 91220 AND addr <> 'X'"
        );
    }

    #[test]
    fn op_table() {
        use Ordering::*;
        assert!(SqlOp::Lt.eval(Less) && !SqlOp::Lt.eval(Equal));
        assert!(SqlOp::Le.eval(Equal) && !SqlOp::Le.eval(Greater));
        assert!(SqlOp::Eq.eval(Equal) && !SqlOp::Eq.eval(Less));
        assert!(SqlOp::Ne.eval(Less) && !SqlOp::Ne.eval(Equal));
        assert!(SqlOp::Ge.eval(Greater) && SqlOp::Ge.eval(Equal));
        assert!(SqlOp::Gt.eval(Greater) && !SqlOp::Gt.eval(Equal));
    }
}
