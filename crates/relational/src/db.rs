//! The database: a named collection of tables.

use crate::table::{Row, Table, TableSchema};
use crate::DbError;

/// An in-memory database.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
}

impl Database {
    /// An empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database { name: name.into(), tables: Vec::new() }
    }

    /// The database name (used in wrapper URIs and hole ids).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create a table; fails when the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        if self.table(&schema.name).is_some() {
            return Err(DbError::new(format!("table `{}` already exists", schema.name)));
        }
        self.tables.push(Table::new(schema));
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.schema().name == name)
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.schema().name == name)
    }

    /// All tables in creation order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Insert one row.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), DbError> {
        self.table_mut(table)
            .ok_or_else(|| DbError::new(format!("no table `{table}`")))?
            .insert(row)
    }

    /// Insert many rows.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<(), DbError> {
        let t = self
            .table_mut(table)
            .ok_or_else(|| DbError::new(format!("no table `{table}`")))?;
        for r in rows {
            t.insert(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;
    use crate::value::DataType;

    #[test]
    fn create_insert_lookup() {
        let mut db = Database::new("realestate");
        db.create_table(TableSchema::new(
            "homes",
            vec![Column::new("addr", DataType::Text), Column::new("zip", DataType::Int)],
        ))
        .unwrap();
        db.insert("homes", vec!["La Jolla".into(), 91220.into()]).unwrap();
        db.insert_rows(
            "homes",
            vec![
                vec!["El Cajon".into(), 91223.into()],
                vec!["Del Mar".into(), 92014.into()],
            ],
        )
        .unwrap();
        assert_eq!(db.table("homes").unwrap().len(), 3);
        assert_eq!(db.name(), "realestate");
    }

    #[test]
    fn duplicate_table_and_missing_table_errors() {
        let mut db = Database::new("d");
        let schema = TableSchema::new("t", vec![Column::new("x", DataType::Int)]);
        db.create_table(schema.clone()).unwrap();
        assert!(db.create_table(schema).is_err());
        assert!(db.insert("missing", vec![1.into()]).is_err());
        assert!(db.table("missing").is_none());
    }

    #[test]
    fn tables_iterate_in_creation_order() {
        let mut db = Database::new("d");
        for name in ["c", "a", "b"] {
            db.create_table(TableSchema::new(name, vec![Column::new("x", DataType::Int)]))
                .unwrap();
        }
        let names: Vec<&str> = db.tables().map(|t| t.schema().name.as_str()).collect();
        assert_eq!(names, ["c", "a", "b"]);
    }
}
