//! Typed cell values.

use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
        })
    }
}

/// One cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Text(String),
    Null,
}

impl Value {
    /// Does the value belong to the column type? `Null` fits every type.
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
        )
    }

    /// SQL-style ordering: `Null` sorts first, numerics numerically, text
    /// lexicographically. Cross-type comparisons order by type rank (used
    /// only by ORDER BY over heterogeneous data, which well-typed tables
    /// never produce).
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Int(a), Value::Float(b)) => {
                (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (Value::Float(a), Value::Int(b)) => {
                a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Null => f.write_str(""),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_fit() {
        assert!(Value::Int(1).fits(DataType::Int));
        assert!(!Value::Int(1).fits(DataType::Text));
        assert!(Value::Null.fits(DataType::Float));
        assert!(Value::from("x").fits(DataType::Text));
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Int(3).sql_cmp(&Value::Int(10)), Ordering::Less);
        assert_eq!(Value::Float(2.5).sql_cmp(&Value::Int(2)), Ordering::Greater);
        assert_eq!(Value::from("a").sql_cmp(&Value::from("b")), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(91220).to_string(), "91220");
        assert_eq!(Value::from("La Jolla").to_string(), "La Jolla");
        assert_eq!(Value::Null.to_string(), "");
    }
}
