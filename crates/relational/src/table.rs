//! Schemas, rows and tables.

use crate::value::{DataType, Value};
use crate::DbError;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A table schema: name plus ordered columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Define a schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema { name: name.into(), columns }
    }

    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// One row: values in column order.
pub type Row = Vec<Value>;

/// A table: schema plus rows in insertion order.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Insert a row after arity/type checking.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::new(format!(
                "table {}: expected {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.schema.columns) {
            if !v.fits(c.ty) {
                return Err(DbError::new(format!(
                    "table {}: value `{v}` does not fit column {} ({})",
                    self.schema.name, c.name, c.ty
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row by position (insertion order).
    pub fn row(&self, i: usize) -> Option<&Row> {
        self.rows.get(i)
    }

    /// Full scan.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Filtered scan (σ with an arbitrary row predicate).
    pub fn select<'a>(
        &'a self,
        pred: impl Fn(&Row) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Row> + 'a {
        self.rows.iter().filter(move |r| pred(r))
    }

    /// Projection to a set of columns (π), by name.
    pub fn project(&self, cols: &[&str]) -> Result<Vec<Row>, DbError> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.schema
                    .col_index(c)
                    .ok_or_else(|| DbError::new(format!("no column `{c}`")))
            })
            .collect::<Result<_, _>>()?;
        Ok(self.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect())
    }

    /// Sort rows in place by a column (ascending SQL order).
    pub fn order_by(&mut self, col: &str) -> Result<(), DbError> {
        let i = self
            .schema
            .col_index(col)
            .ok_or_else(|| DbError::new(format!("no column `{col}`")))?;
        self.rows.sort_by(|a, b| a[i].sql_cmp(&b[i]));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homes_schema() -> TableSchema {
        TableSchema::new(
            "homes",
            vec![
                Column::new("addr", DataType::Text),
                Column::new("zip", DataType::Int),
                Column::new("price", DataType::Int),
            ],
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new(homes_schema());
        t.insert(vec!["La Jolla".into(), 91220.into(), 950000.into()]).unwrap();
        t.insert(vec!["El Cajon".into(), 91223.into(), 450000.into()]).unwrap();
        assert_eq!(t.len(), 2);
        let addrs: Vec<String> = t.scan().map(|r| r[0].to_string()).collect();
        assert_eq!(addrs, ["La Jolla", "El Cajon"]);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = Table::new(homes_schema());
        assert!(t.insert(vec!["x".into()]).is_err());
        assert!(t.insert(vec![1.into(), 2.into(), 3.into()]).is_err()); // addr must be text
        assert!(t.insert(vec!["x".into(), Value::Null, 3.into()]).is_ok()); // null ok
    }

    #[test]
    fn select_and_project() {
        let mut t = Table::new(homes_schema());
        t.insert(vec!["a".into(), 91220.into(), 100.into()]).unwrap();
        t.insert(vec!["b".into(), 91223.into(), 200.into()]).unwrap();
        t.insert(vec!["c".into(), 91220.into(), 300.into()]).unwrap();
        let hits: Vec<&Row> = t.select(|r| r[1] == Value::Int(91220)).collect();
        assert_eq!(hits.len(), 2);
        let proj = t.project(&["zip"]).unwrap();
        assert_eq!(proj[1], vec![Value::Int(91223)]);
        assert!(t.project(&["nope"]).is_err());
    }

    #[test]
    fn order_by_sorts() {
        let mut t = Table::new(homes_schema());
        t.insert(vec!["b".into(), 3.into(), 1.into()]).unwrap();
        t.insert(vec!["a".into(), 1.into(), 2.into()]).unwrap();
        t.insert(vec!["c".into(), 2.into(), 3.into()]).unwrap();
        t.order_by("zip").unwrap();
        let zips: Vec<String> = t.scan().map(|r| r[1].to_string()).collect();
        assert_eq!(zips, ["1", "2", "3"]);
        assert!(t.order_by("nope").is_err());
    }
}
