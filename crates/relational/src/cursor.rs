//! Stateful cursors — "the tuple is the quantum of navigation in
//! relational databases" (paper Example 5).
//!
//! A [`Cursor`] tracks a position inside one table and supports the two
//! operations a wrapper needs: advance-and-fetch (`next`) and absolute
//! repositioning (`seek`, for fills of non-sequential hole ids). The
//! cursor counts how often it touched the storage layer, so experiments
//! can report database-side work alongside wire traffic.

use crate::table::{Row, Table};

/// A cursor over a table's rows.
#[derive(Debug, Clone)]
pub struct Cursor {
    pos: usize,
    fetched: u64,
    seeks: u64,
}

impl Cursor {
    /// A cursor positioned before the first row.
    pub fn open() -> Self {
        Cursor { pos: 0, fetched: 0, seeks: 0 }
    }

    /// Current position (index of the next row to fetch).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Advance and fetch the next complete tuple, if any.
    pub fn next<'t>(&mut self, table: &'t Table) -> Option<&'t Row> {
        let row = table.row(self.pos)?;
        self.pos += 1;
        self.fetched += 1;
        Some(row)
    }

    /// Fetch up to `n` tuples ("chunks of 100 tuples at a time", §4).
    pub fn next_n<'t>(&mut self, table: &'t Table, n: usize) -> Vec<&'t Row> {
        let mut out = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            match self.next(table) {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Reposition to an absolute row index (counts as a seek when the
    /// position actually changes).
    pub fn seek(&mut self, pos: usize) {
        if pos != self.pos {
            self.seeks += 1;
            self.pos = pos;
        }
    }

    /// Rows fetched through this cursor.
    pub fn fetched(&self) -> u64 {
        self.fetched
    }

    /// Repositionings performed.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }
}

impl Default for Cursor {
    fn default() -> Self {
        Cursor::open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, TableSchema};
    use crate::value::DataType;

    fn table(n: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![Column::new("k", DataType::Int)],
        ));
        for i in 0..n {
            t.insert(vec![i.into()]).unwrap();
        }
        t
    }

    #[test]
    fn sequential_scan() {
        let t = table(3);
        let mut c = Cursor::open();
        assert_eq!(c.next(&t).unwrap()[0].to_string(), "0");
        assert_eq!(c.next(&t).unwrap()[0].to_string(), "1");
        assert_eq!(c.next(&t).unwrap()[0].to_string(), "2");
        assert!(c.next(&t).is_none());
        assert_eq!(c.fetched(), 3);
        assert_eq!(c.seeks(), 0);
    }

    #[test]
    fn chunked_fetch() {
        let t = table(5);
        let mut c = Cursor::open();
        assert_eq!(c.next_n(&t, 2).len(), 2);
        assert_eq!(c.next_n(&t, 2).len(), 2);
        assert_eq!(c.next_n(&t, 2).len(), 1); // only one row left
        assert_eq!(c.next_n(&t, 2).len(), 0);
        assert_eq!(c.position(), 5);
    }

    #[test]
    fn seek_repositions() {
        let t = table(10);
        let mut c = Cursor::open();
        c.next_n(&t, 3);
        c.seek(8);
        assert_eq!(c.next(&t).unwrap()[0].to_string(), "8");
        assert_eq!(c.seeks(), 1);
        // Seeking to the current position is free.
        c.seek(c.position());
        assert_eq!(c.seeks(), 1);
    }
}
