//! Property tests for the buffer component (experiment E10): under any
//! fill policy and any navigation order, the buffered view is
//! indistinguishable from direct navigation, and the maintained open tree
//! always *represents* the underlying document (Def. 4).

use mix_buffer::fragment::tree_represents;
use mix_buffer::{
    BufferNavigator, FaultConfig, FaultyWrapper, FillPolicy, HealthStatus, Prefetcher,
    RetryPolicy, TreeWrapper,
};
use mix_nav::explore::materialize;
use mix_nav::{Cmd, DocNavigator, NavProgram};
use mix_xml::Tree;
use proptest::prelude::*;

/// Small random trees.
fn arb_tree() -> impl Strategy<Value = Tree> {
    let label = prop_oneof![Just("a"), Just("b"), Just("c"), Just("x"), Just("long-label")];
    label.clone().prop_map(Tree::leaf).prop_recursive(4, 24, 4, move |inner| {
        (label.clone(), proptest::collection::vec(inner, 0..4))
            .prop_map(|(l, children)| Tree::node(l, children))
    })
}

fn arb_policy() -> impl Strategy<Value = FillPolicy> {
    prop_oneof![
        Just(FillPolicy::NodeAtATime),
        (1usize..5).prop_map(|n| FillPolicy::Chunked { n }),
        Just(FillPolicy::WholeSubtree),
        (1usize..6).prop_map(|max_nodes| FillPolicy::SizeThreshold { max_nodes }),
    ]
}

/// Random straight-line navigation programs (chains resume from the
/// produced pointer; `run` tolerates ⊥).
fn arb_program() -> impl Strategy<Value = NavProgram> {
    proptest::collection::vec(
        prop_oneof![Just(Cmd::Down), Just(Cmd::Right), Just(Cmd::Fetch)],
        0..20,
    )
    .prop_map(NavProgram::chain)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn buffered_navigation_matches_direct(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
    ) {
        let mut direct = DocNavigator::from_tree(&tree);
        let mut buffered =
            BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");

        let a = prog.run(&mut direct);
        let b = prog.run(&mut buffered);
        // Same ⊥-pattern and same fetched labels.
        let a_defined: Vec<bool> = a.ptrs.iter().map(Option::is_some).collect();
        let b_defined: Vec<bool> = b.ptrs.iter().map(Option::is_some).collect();
        prop_assert_eq!(a_defined, b_defined);
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn open_tree_always_represents_the_document(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
    ) {
        let mut buffered =
            BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");
        let _ = prog.run(&mut buffered);
        // Def. 4: the maintained open tree can be completed to the source
        // tree by substituting its holes.
        if let Some(open) = buffered.open_tree() {
            prop_assert!(
                tree_represents(&open, &tree),
                "open tree {} does not represent {}",
                open,
                tree
            );
        }
    }

    #[test]
    fn full_materialization_closes_the_open_tree(
        tree in arb_tree(),
        policy in arb_policy(),
    ) {
        let mut buffered =
            BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");
        let got = materialize(&mut buffered);
        prop_assert_eq!(&got, &tree);
        let open = buffered.open_tree().expect("connected after navigation");
        // Everything explored: no holes remain except possibly trailing
        // empty ones the protocol already proved empty.
        let closed = open.to_tree();
        prop_assert_eq!(closed.as_ref(), Some(&tree));
    }

    #[test]
    fn retries_absorb_any_transient_fault_schedule(
        tree in arb_tree(),
        policy in arb_policy(),
        seed in 0u64..u64::MAX,
        rate_millis in 0u64..500,
    ) {
        // Under ANY seeded schedule of transient faults (up to a 50% fault
        // rate on both the handshake and every fill), retries make the
        // buffered view equal to the underlying tree — the fault layer is
        // invisible to a client that navigates everything.
        let rate = rate_millis as f64 / 1000.0;
        let wrapper = FaultyWrapper::new(
            TreeWrapper::single(&tree, policy),
            FaultConfig::transient(seed, rate),
        );
        let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let mut buffered = BufferNavigator::with_retry(wrapper, "doc", retry);
        let got = materialize(&mut buffered);
        prop_assert_eq!(&got, &tree);
        // Nothing degraded: every fault was retried away.
        let snap = buffered.health().snapshot();
        prop_assert_eq!(snap.degraded_ops, 0);
        prop_assert_eq!(buffered.health().status(), HealthStatus::Healthy);
        // And the open tree still closes to the exact document.
        let closed = buffered.open_tree().expect("connected").to_tree();
        prop_assert_eq!(closed.as_ref(), Some(&tree));
    }

    #[test]
    fn faulty_navigation_matches_direct_navigation(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
        seed in 0u64..u64::MAX,
    ) {
        // A fixed 30% transient-fault rate under an arbitrary navigation
        // program: same ⊥-pattern, same labels as a direct DOM walk.
        let mut direct = DocNavigator::from_tree(&tree);
        let wrapper = FaultyWrapper::new(
            TreeWrapper::single(&tree, policy),
            FaultConfig::transient(seed, 0.3),
        );
        let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let mut buffered = BufferNavigator::with_retry(wrapper, "doc", retry);
        let a = prog.run(&mut direct);
        let b = prog.run(&mut buffered);
        let a_defined: Vec<bool> = a.ptrs.iter().map(Option::is_some).collect();
        let b_defined: Vec<bool> = b.ptrs.iter().map(Option::is_some).collect();
        prop_assert_eq!(a_defined, b_defined);
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(buffered.health().status(), HealthStatus::Healthy);
    }

    #[test]
    fn batched_fills_match_one_hole_fills(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
        batch_limit in 2usize..8,
        budget in 0usize..6,
    ) {
        // The tentpole's differential property: for ANY navigation
        // sequence, coalescing known holes into fill_many exchanges (with
        // any wrapper-side continuation budget) observes exactly what
        // one-hole-at-a-time fills observe, and the open tree still
        // represents the document.
        let mut plain =
            BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");
        let mut batched = BufferNavigator::new(
            TreeWrapper::single(&tree, policy).with_batch_budget(budget),
            "doc",
        )
        .batched(batch_limit);
        let a = prog.run(&mut plain);
        let b = prog.run(&mut batched);
        let a_defined: Vec<bool> = a.ptrs.iter().map(Option::is_some).collect();
        let b_defined: Vec<bool> = b.ptrs.iter().map(Option::is_some).collect();
        prop_assert_eq!(a_defined, b_defined);
        prop_assert_eq!(a.labels, b.labels);
        // The spliced open tree (pending replies excluded) still
        // represents the document (Def. 4).
        if let Some(open) = batched.open_tree() {
            prop_assert!(tree_represents(&open, &tree), "open tree {} vs {}", open, tree);
        }
    }

    #[test]
    fn batched_fills_match_under_fault_schedules(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
        batch_limit in 2usize..8,
        budget in 0usize..6,
        seed in 0u64..u64::MAX,
        rate_millis in 0u64..400,
    ) {
        // Same differential property with a seeded transient-fault
        // schedule underneath: a batch fails or survives as a unit, and
        // retries make batched navigation observationally identical to
        // unbatched navigation over the same faulty source.
        let rate = rate_millis as f64 / 1000.0;
        let retry = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let mut plain = BufferNavigator::with_retry(
            FaultyWrapper::new(
                TreeWrapper::single(&tree, policy),
                FaultConfig::transient(seed, rate),
            ),
            "doc",
            retry,
        );
        let mut batched = BufferNavigator::with_retry(
            FaultyWrapper::new(
                TreeWrapper::single(&tree, policy).with_batch_budget(budget),
                FaultConfig::transient(seed, rate),
            ),
            "doc",
            retry,
        )
        .batched(batch_limit);
        let a = prog.run(&mut plain);
        let b = prog.run(&mut batched);
        let a_defined: Vec<bool> = a.ptrs.iter().map(Option::is_some).collect();
        let b_defined: Vec<bool> = b.ptrs.iter().map(Option::is_some).collect();
        prop_assert_eq!(a_defined, b_defined);
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(batched.health().status(), HealthStatus::Healthy);
    }

    #[test]
    fn prefetching_never_changes_observations(
        tree in arb_tree(),
        policy in arb_policy(),
        prog in arb_program(),
        depth in 0usize..6,
    ) {
        let mut plain =
            BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");
        let mut pf = BufferNavigator::new(
            Prefetcher::new(TreeWrapper::single(&tree, policy), depth),
            "doc",
        );
        let a = prog.run(&mut plain);
        let b = prog.run(&mut pf);
        prop_assert_eq!(a.labels, b.labels);
        let a_defined: Vec<bool> = a.ptrs.iter().map(Option::is_some).collect();
        let b_defined: Vec<bool> = b.ptrs.iter().map(Option::is_some).collect();
        prop_assert_eq!(a_defined, b_defined);
    }
}
