//! Concurrent stress tests for the shared observability structures: the
//! cross-query [`FragmentCache`] and the [`MetricsRegistry`] are handed to
//! worker threads (prefetchers, parallel exchanges) and must keep their
//! invariants under real contention — statistics stay monotone and lose no
//! updates, and epoch invalidation never serves a stale fragment.

use mix_buffer::{Fragment, FragmentCache, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const SOURCES: [&str; 3] = ["s0", "s1", "s2"];

fn generation_of(fragments: &[Fragment]) -> u64 {
    match &fragments[0] {
        Fragment::Node { label, .. } => label
            .as_str()
            .strip_prefix('g')
            .and_then(|v| v.parse().ok())
            .expect("stress entries are g<N> leaves"),
        Fragment::Hole(_) => panic!("stress entries are leaves"),
    }
}

/// One writer per source publishes generations (invalidate, bump, insert),
/// many readers look up concurrently, and a snapshot thread watches the
/// statistics. A reader that observes generation `floor` *before* its
/// lookup must never be served an entry older than `floor`: everything
/// older was invalidated before `floor` became visible.
#[test]
fn fragment_cache_epoch_invalidation_never_serves_stale_entries() {
    let cache = FragmentCache::with_budget(1 << 20);
    let generations: Arc<Vec<AtomicU64>> =
        Arc::new(SOURCES.iter().map(|_| AtomicU64::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    const ROUNDS: u64 = 300;
    const HOLES_PER_SOURCE: usize = 8;

    thread::scope(|scope| {
        // Writers: one per source, so generation order is well-defined
        // per source. Invalidate *first*, then publish the new
        // generation number, then insert entries carrying it.
        for (si, source) in SOURCES.iter().enumerate() {
            let cache = cache.clone();
            let generations = Arc::clone(&generations);
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    cache.invalidate(source);
                    let g = generations[si].fetch_add(1, Ordering::SeqCst) + 1;
                    for hole in 0..HOLES_PER_SOURCE {
                        let frags = Arc::new(vec![Fragment::leaf(format!("g{g}"))]);
                        cache.insert(source, &format!("h{hole}"), &frags);
                    }
                }
            });
        }

        // Readers: hammer lookups across all sources and check freshness.
        for _ in 0..4 {
            let cache = cache.clone();
            let generations = Arc::clone(&generations);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let si = i % SOURCES.len();
                    let hole = format!("h{}", i % HOLES_PER_SOURCE);
                    let floor = generations[si].load(Ordering::SeqCst);
                    if let Some(frags) = cache.lookup(SOURCES[si], &hole) {
                        let served = generation_of(&frags);
                        assert!(
                            served >= floor,
                            "stale fragment: served generation {served} after \
                             generation {floor} was already invalidated"
                        );
                    }
                    i = i.wrapping_add(1);
                }
            });
        }

        // Snapshot thread: statistics must be monotone while the cache
        // churns (counters only ever grow).
        {
            let cache = cache.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last = (0u64, 0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let s = cache.stats();
                    let now = (s.hits + s.misses, s.insertions, s.evictions, s.invalidations);
                    assert!(now.0 >= last.0, "lookups went backwards");
                    assert!(now.1 >= last.1, "insertions went backwards");
                    assert!(now.2 >= last.2, "evictions went backwards");
                    assert!(now.3 >= last.3, "invalidations went backwards");
                    last = now;
                }
            });
        }

        // Writers are the bounded part; let them finish, then stop the
        // unbounded readers/snapshotter. Scope joins everything.
        // (Writers are joined implicitly: readers only stop after the
        // main thread sets the flag, which it does after writers are
        // done inserting — detected via the invalidation counter.)
        while cache.stats().invalidations < ROUNDS * SOURCES.len() as u64 {
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let stats = cache.stats();
    assert_eq!(
        stats.invalidations,
        ROUNDS * SOURCES.len() as u64,
        "every invalidate call is counted exactly once"
    );
    assert_eq!(
        stats.insertions,
        ROUNDS * (SOURCES.len() * HOLES_PER_SOURCE) as u64,
        "every insert was admitted and counted (budget never forced a rejection)"
    );
    // The final generation must be resident and servable.
    for (si, source) in SOURCES.iter().enumerate() {
        let g = generations[si].load(Ordering::SeqCst);
        let frags = cache.lookup(source, &"h0".to_string()).expect("final entry resident");
        assert_eq!(generation_of(&frags), g);
    }
}

/// The classic prefetch race, pinned: many workers miss on the same cold
/// hole and then all try to insert the reply. Before the fix, every
/// racing insert counted as a fresh insertion (and churned the resident
/// entry), skewing hit/miss/insertion accounting under concurrent
/// prefetch. Now exactly one insert is admitted; the others coalesce
/// into recency refreshes, and the books balance exactly:
/// `hits + misses == lookups` and `misses == insertions + coalesced`.
#[test]
fn racing_inserts_of_one_hole_coalesce_and_keep_stats_coherent() {
    const WORKERS: usize = 16;
    let cache = FragmentCache::with_budget(1 << 20);
    let hole = "h0".to_string();

    thread::scope(|scope| {
        for w in 0..WORKERS {
            let cache = cache.clone();
            let hole = hole.clone();
            scope.spawn(move || {
                // lookup-miss → fetch → insert, the prefetch worker shape.
                if cache.lookup("src", &hole).is_none() {
                    let frags = Arc::new(vec![Fragment::leaf(format!("g{w}"))]);
                    cache.insert("src", &hole, &frags);
                }
            });
        }
    });

    let s = cache.stats();
    assert_eq!(s.entries, 1, "one resident entry for one hole");
    assert_eq!(s.insertions, 1, "exactly one racing insert is admitted");
    assert_eq!(
        s.insertions + s.coalesced,
        s.misses,
        "every miss resolved to one admission or one coalesce: {s:?}"
    );
    assert_eq!(s.hits + s.misses, WORKERS as u64, "one lookup per worker: {s:?}");
    assert_eq!(s.evictions, 0, "coalescing never evicts");
    // The survivor is the first admission; later replies were coalesced
    // away, and every hit shares the survivor's allocation.
    let resident = cache.lookup("src", &hole).expect("resident");
    let again = cache.lookup("src", &hole).expect("resident");
    assert!(Arc::ptr_eq(&resident, &again), "hits share one allocation");
}

/// N threads bump shared counters, gauges, and histograms while a
/// snapshotter reads; every update must land (atomic, not lost) and
/// snapshots must be monotone for counters.
#[test]
fn metrics_registry_loses_no_updates_under_contention() {
    let registry = MetricsRegistry::enabled();
    const THREADS: u64 = 8;
    const OPS: u64 = 20_000;

    let counter = registry.counter("stress_total", "stress counter", &[]);
    let hist = registry.histogram("stress_latency", "stress histogram", &[]);
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        for t in 0..THREADS {
            // Clones share cells with the originals; half the threads
            // re-resolve the series through the registry to also stress
            // the upsert path.
            let (counter, hist) = if t % 2 == 0 {
                (counter.clone(), hist.clone())
            } else {
                (
                    registry.counter("stress_total", "stress counter", &[]),
                    registry.histogram("stress_latency", "stress histogram", &[]),
                )
            };
            let gauge = registry.gauge("stress_inflight", "stress gauge", &[]);
            scope.spawn(move || {
                for i in 0..OPS {
                    counter.inc();
                    hist.observe(i % 1024);
                    gauge.set(i);
                }
            });
        }

        let registry2 = registry.clone();
        let stop2 = Arc::clone(&stop);
        scope.spawn(move || {
            let mut last = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                let snap = registry2.snapshot();
                let now = snap
                    .histogram("stress_latency", &[])
                    .map(|h| h.count)
                    .unwrap_or(0);
                assert!(now >= last, "histogram count went backwards");
                last = now;
            }
        });

        while counter.get() < THREADS * OPS {
            thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(counter.get(), THREADS * OPS, "no counter update was lost");
    let snap = registry.snapshot();
    let h = snap.histogram("stress_latency", &[]).expect("histogram registered");
    assert_eq!(h.count, THREADS * OPS, "no histogram observation was lost");
}
