//! Live metrics: lock-light counters, gauges, and log₂-bucket histograms.
//!
//! The flight recorder ([`crate::trace`]) answers "what happened, in what
//! order?"; this module answers "how much, so far?" — the *aggregation*
//! complement. A [`MetricsRegistry`] holds named, labelled series backed
//! by shared atomic cells. Recording is wait-free (one relaxed atomic add
//! per event); the registry's lock is touched only at registration and
//! snapshot time, never on the hot path.
//!
//! # Zero-cost when disabled
//!
//! Like the trace sink, instrumented call sites guard metric recording
//! behind [`MetricsRegistry::is_enabled`] — a single relaxed atomic load —
//! so a disabled registry costs one predictable branch per site. The
//! environment variable `MIX_METRICS_FORCE=1` flips every
//! *default-constructed* registry to enabled, which CI uses to run the
//! whole suite under metrics and check the observation-only invariant.
//!
//! One exception is deliberate: the buffer's traffic counters
//! ([`crate::BufferStats`]) are *always on*, exactly as they were before
//! this module existed — they are the single source of truth behind
//! `Engine::traffic()` and the profiler. [`BufferStats::bind_into`]
//! re-registers those same cells under canonical metric names, so a
//! snapshot, the engine's traffic surface, and the trace rollup all read
//! the same memory.
//!
//! # Histograms
//!
//! [`Histogram`] uses fixed log₂ buckets: an observation `v` lands in
//! bucket `⌈log₂(v+1)⌉`, i.e. bucket `i` covers `2^(i-1) ≤ v < 2^i`
//! (bucket 0 holds exact zeros). 65 buckets cover the whole `u64` range
//! with no allocation and no configuration; [`HistogramSnapshot::quantile`]
//! reads p50/p95/p99 as the upper bound of the covering bucket, and the
//! exact maximum is tracked separately.
//!
//! [`BufferStats`]: crate::BufferStats
//! [`BufferStats::bind_into`]: crate::BufferStats::bind_into

use crate::pool::lock_unpoisoned;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ buckets: zeros, plus one bucket per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone counter (shared, wait-free).
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `by` to the counter.
    #[inline]
    pub fn add(&self, by: u64) {
        self.v.fetch_add(by, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Reset to zero (counter semantics stay monotone between resets; the
    /// owner of the series decides when a reset is meaningful).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can rise and fall (shared, wait-free).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add `by`.
    #[inline]
    pub fn add(&self, by: u64) {
        self.v.fetch_add(by, Ordering::Relaxed);
    }

    /// Subtract `by`, saturating at zero. Returns the amount actually
    /// subtracted (the delta applied), so exact-accounting rollups can
    /// reproduce the gauge even at the saturation floor.
    #[inline]
    pub fn sub_saturating(&self, by: u64) -> u64 {
        let before = self.v.load(Ordering::Relaxed);
        let applied = before.min(by);
        self.v.store(before - applied, Ordering::Relaxed);
        applied
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed log₂-bucket histogram (shared, wait-free).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

/// The bucket index covering `v`: 0 for zeros, else `64 - leading_zeros`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// The exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.cells.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in self.cells.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                buckets.push((bucket_bound(i), cumulative));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// The upper bound of the bucket containing quantile `q` (0 when
    /// empty). Shorthand for `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median bucket bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile bucket bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, cumulative count)` for each non-empty
    /// bucket, in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Exact maximum observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing quantile `q` (0 when
    /// empty). `quantile(1.0)` answers the exact tracked maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(bound, cum) in &self.buckets {
            if cum >= rank {
                // Never report beyond the exact maximum.
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// `p50/p95/p99/max` in one call (the explain-analyze summary line).
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99), self.max)
    }

    /// Median bucket bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile bucket bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into this snapshot: per-bucket counts add (the shared
    /// log₂ bounds make snapshots from any two [`Histogram`]s mergeable),
    /// `count`/`sum` add, `max` takes the larger. This is how verb-split
    /// latency series aggregate back into one distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        // Cumulative → per-bucket deltas, keyed by bound.
        let deltas = |snap: &HistogramSnapshot| {
            let mut prev = 0u64;
            snap.buckets
                .iter()
                .map(|&(bound, cum)| {
                    let d = cum - prev;
                    prev = cum;
                    (bound, d)
                })
                .collect::<Vec<_>>()
        };
        let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (bound, d) in deltas(self).into_iter().chain(deltas(other)) {
            *merged.entry(bound).or_insert(0) += d;
        }
        let mut cumulative = 0u64;
        self.buckets = merged
            .into_iter()
            .map(|(bound, d)| {
                cumulative += d;
                (bound, cumulative)
            })
            .collect();
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// What a registered series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Value that can rise and fall.
    Gauge,
    /// Log₂-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prometheus_type(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum SeriesData {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
struct Series {
    name: String,
    help: &'static str,
    labels: Vec<(String, String)>,
    data: SeriesData,
}

#[derive(Debug, Default)]
struct RegistryInner {
    enabled: AtomicBool,
    series: Mutex<Vec<Series>>,
}

/// Is `MIX_METRICS_FORCE=1` set? Cached once per process.
fn force_enabled() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("MIX_METRICS_FORCE").map(|v| v == "1" || v == "true").unwrap_or(false)
    })
}

/// Shared, cloneable handle to one metrics registry.
///
/// Clones share the same series and enabled flag; hand the *same* registry
/// to the engine and every buffer/wrapper so one snapshot covers the whole
/// mediator stack.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    /// A disabled registry — unless `MIX_METRICS_FORCE=1` is set in the
    /// environment, in which case it records from the start.
    fn default() -> Self {
        let reg = MetricsRegistry { inner: Arc::default() };
        if force_enabled() {
            reg.inner.enabled.store(true, Ordering::Relaxed);
        }
        reg
    }
}

impl MetricsRegistry {
    /// A disabled-by-default registry (env force-enable applies).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A registry that is off no matter what the environment says — for
    /// internal delegation paths that must never record.
    pub fn off() -> Self {
        MetricsRegistry { inner: Arc::default() }
    }

    /// An enabled registry.
    pub fn enabled() -> Self {
        let reg = MetricsRegistry { inner: Arc::default() };
        reg.inner.enabled.store(true, Ordering::Relaxed);
        reg
    }

    /// Is recording currently on? Call sites guard metric recording behind
    /// this single relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (registered series are kept either way).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Do two handles share the same registry?
    pub fn same_registry(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn upsert(&self, name: &str, help: &'static str, labels: &[(&str, &str)], make: impl FnOnce() -> SeriesData) -> SeriesData {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut series = lock_unpoisoned(&self.inner.series);
        if let Some(existing) =
            series.iter().find(|s| s.name == name && s.labels == labels)
        {
            return existing.data.clone();
        }
        let data = make();
        series.push(Series { name: name.to_string(), help, labels, data: data.clone() });
        data
    }

    /// Get or create the counter named `name` with the given label set.
    /// Registering the same `(name, labels)` twice returns the *same*
    /// shared cells, so independent components naturally aggregate.
    pub fn counter(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Counter {
        match self.upsert(name, help, labels, || SeriesData::Counter(Counter::new())) {
            SeriesData::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.upsert(name, help, labels, || SeriesData::Gauge(Gauge::new())) {
            SeriesData::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Get or create a histogram series.
    pub fn histogram(&self, name: &str, help: &'static str, labels: &[(&str, &str)]) -> Histogram {
        match self.upsert(name, help, labels, || SeriesData::Histogram(Histogram::new())) {
            SeriesData::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Register an *existing* counter's cells under `(name, labels)` —
    /// how the buffer's always-on [`crate::BufferStats`] counters become
    /// the registry's single source of truth. Replaces a previous binding
    /// of the same series.
    pub fn bind_counter(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) {
        self.bind(name, help, labels, SeriesData::Counter(counter.clone()));
    }

    /// Register an existing gauge's cells (see [`Self::bind_counter`]).
    pub fn bind_gauge(&self, name: &str, help: &'static str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.bind(name, help, labels, SeriesData::Gauge(gauge.clone()));
    }

    fn bind(&self, name: &str, help: &'static str, labels: &[(&str, &str)], data: SeriesData) {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut series = lock_unpoisoned(&self.inner.series);
        if let Some(existing) =
            series.iter_mut().find(|s| s.name == name && s.labels == labels)
        {
            existing.data = data;
            existing.help = help;
        } else {
            series.push(Series { name: name.to_string(), help, labels, data });
        }
    }

    /// Remove the series registered under exactly `(name, labels)`.
    /// Returns whether a series was removed. Handles other components
    /// still hold keep working — they just stop being exported — so
    /// unregistering is always safe, never racy.
    ///
    /// Long-lived registries serving per-session series (labels like
    /// `session="42"`) MUST unregister them at session teardown or the
    /// registry grows without bound — the leak class the session-churn
    /// tests pin down.
    pub fn unregister(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut series = lock_unpoisoned(&self.inner.series);
        let before = series.len();
        series.retain(|s| !(s.name == name && s.labels == labels));
        series.len() < before
    }

    /// Remove every series carrying the label pair `(key, value)` —
    /// teardown for a whole session/source worth of series in one sweep.
    /// Returns how many series were removed.
    pub fn unregister_labeled(&self, key: &str, value: &str) -> usize {
        let mut series = lock_unpoisoned(&self.inner.series);
        let before = series.len();
        series.retain(|s| !s.labels.iter().any(|(k, v)| k == key && v == value));
        before - series.len()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.series).len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = lock_unpoisoned(&self.inner.series);
        MetricsSnapshot {
            samples: series
                .iter()
                .map(|s| Sample {
                    name: s.name.clone(),
                    help: s.help,
                    labels: s.labels.clone(),
                    value: match &s.data {
                        SeriesData::Counter(c) => SampleValue::Counter(c.get()),
                        SeriesData::Gauge(g) => SampleValue::Gauge(g.get()),
                        SeriesData::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }

    /// Render the current state in Prometheus text exposition format
    /// (shorthand for `snapshot().render_prometheus()`).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One sampled series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The metric name (e.g. `mix_requests_total`).
    pub name: String,
    /// One-line description.
    pub help: &'static str,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A sampled value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    /// The scalar reading of a counter/gauge; a histogram answers its
    /// observation count.
    pub fn scalar(&self) -> u64 {
        match self {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => *v,
            SampleValue::Histogram(h) => h.count,
        }
    }

    fn kind(&self) -> MetricKind {
        match self {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Every registered series, in registration order.
    pub samples: Vec<Sample>,
}

fn labels_match(sample: &Sample, labels: &[(&str, &str)]) -> bool {
    sample.labels.len() == labels.len()
        && labels.iter().all(|(k, v)| {
            sample.labels.iter().any(|(sk, sv)| sk == k && sv == v)
        })
}

impl MetricsSnapshot {
    /// The scalar value of the series with exactly these labels.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels_match(s, labels))
            .map(|s| s.value.scalar())
    }

    /// Sum of the scalar values of every series with this name.
    pub fn total(&self, name: &str) -> u64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value.scalar()).sum()
    }

    /// The histogram series with exactly these labels, if any.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.samples.iter().find(|s| s.name == name && labels_match(s, labels)).and_then(|s| {
            match &s.value {
                SampleValue::Histogram(h) => Some(h),
                _ => None,
            }
        })
    }

    /// The change since an earlier snapshot: counters and histograms
    /// subtract (saturating); gauges keep their *current* reading (a
    /// gauge's meaningful delta is signed — callers that need it compare
    /// the two snapshots directly). Series absent from `earlier` pass
    /// through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let before = earlier
                    .samples
                    .iter()
                    .find(|e| e.name == s.name && e.labels == s.labels);
                let value = match (&s.value, before.map(|e| &e.value)) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(then))) => {
                        SampleValue::Counter(now.saturating_sub(*then))
                    }
                    (SampleValue::Histogram(now), Some(SampleValue::Histogram(then))) => {
                        SampleValue::Histogram(HistogramSnapshot {
                            // Recompute cumulative counts over the bound
                            // union so earlier-only buckets subtract too.
                            buckets: diff_buckets(now, then),
                            count: now.count.saturating_sub(then.count),
                            sum: now.sum.saturating_sub(then.sum),
                            max: now.max,
                        })
                    }
                    (v, _) => v.clone(),
                };
                Sample { name: s.name.clone(), help: s.help, labels: s.labels.clone(), value }
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Export as JSON (stable shape: an array of series objects).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{},\"labels\":{{", json_str(&s.name));
            for (k, (lk, lv)) in s.labels.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(lk), json_str(lv));
            }
            let _ = write!(out, "}},\"kind\":\"{}\"", s.value.kind().prometheus_type());
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.max
                    );
                    for (k, (bound, cum)) in h.buckets.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{bound},{cum}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Render in the Prometheus text exposition format: one `# HELP` /
    /// `# TYPE` pair per metric name, then one line per series (histograms
    /// expand to `_bucket`/`_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut emitted_header: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !emitted_header.contains(&s.name.as_str()) {
                emitted_header.push(&s.name);
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.value.kind().prometheus_type());
                // Emit every series of this name right after its header
                // (exposition format requires one contiguous family).
                for t in self.samples.iter().filter(|t| t.name == s.name) {
                    render_series(&mut out, t);
                }
            }
        }
        out
    }
}

fn diff_buckets(now: &HistogramSnapshot, then: &HistogramSnapshot) -> Vec<(u64, u64)> {
    let lookup = |snap: &HistogramSnapshot, bound: u64| -> u64 {
        // Cumulative count at `bound` (the last cumulative value whose
        // bound is ≤ the queried one).
        snap.buckets.iter().take_while(|(b, _)| *b <= bound).last().map(|(_, c)| *c).unwrap_or(0)
    };
    let mut bounds: Vec<u64> = now.buckets.iter().map(|(b, _)| *b).collect();
    for (b, _) in &then.buckets {
        if !bounds.contains(b) {
            bounds.push(*b);
        }
    }
    bounds.sort_unstable();
    let mut out = Vec::new();
    for b in bounds {
        let cum = lookup(now, b).saturating_sub(lookup(then, b));
        if out.last().map(|(_, c)| *c) != Some(cum) || out.is_empty() {
            out.push((b, cum));
        }
    }
    // Drop leading empty buckets, keep the snapshot invariant (non-empty,
    // strictly increasing cumulative counts).
    out.retain(|(_, c)| *c > 0);
    out
}

fn render_series(out: &mut String, s: &Sample) {
    match &s.value {
        SampleValue::Counter(v) | SampleValue::Gauge(v) => {
            let _ = writeln!(out, "{}{} {v}", s.name, render_labels(&s.labels, None));
        }
        SampleValue::Histogram(h) => {
            for (bound, cum) in &h.buckets {
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cum}",
                    s.name,
                    render_labels(&s.labels, Some(&bound.to_string()))
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                s.name,
                render_labels(&s.labels, Some("+Inf")),
                h.count
            );
            let _ = writeln!(out, "{}_sum{} {}", s.name, render_labels(&s.labels, None), h.sum);
            let _ =
                writeln!(out, "{}_count{} {}", s.name, render_labels(&s.labels, None), h.count);
        }
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-conversation retry/breaker metric handles, recorded by
/// [`crate::retry::RetryState::run_observed`]. Counter construction is
/// cheap; recording is guarded behind the registry's enabled flag.
#[derive(Clone, Debug)]
pub struct RetryMetrics {
    registry: MetricsRegistry,
    retries: Counter,
    breaker_opens: Counter,
    breaker_closes: Counter,
}

impl RetryMetrics {
    /// Register the retry/breaker counters for `source` in `registry`.
    pub fn new(registry: &MetricsRegistry, source: &str) -> Self {
        RetryMetrics {
            registry: registry.clone(),
            retries: registry.counter(
                "mix_retries_total",
                "Transient LXP errors retried away",
                &[("source", source)],
            ),
            breaker_opens: registry.counter(
                "mix_breaker_opens_total",
                "Circuit-breaker openings (source quarantined)",
                &[("source", source)],
            ),
            breaker_closes: registry.counter(
                "mix_breaker_closes_total",
                "Circuit-breaker closings (half-open probe succeeded)",
                &[("source", source)],
            ),
        }
    }

    /// Record one retried attempt.
    #[inline]
    pub fn record_retry(&self) {
        if self.registry.is_enabled() {
            self.retries.inc();
        }
    }

    /// Record one breaker opening.
    #[inline]
    pub fn record_breaker_open(&self) {
        if self.registry.is_enabled() {
            self.breaker_opens.inc();
        }
    }

    /// Record one breaker closing (a successful half-open probe).
    #[inline]
    pub fn record_breaker_close(&self) {
        if self.registry.is_enabled() {
            self.breaker_closes.inc();
        }
    }
}

/// Per-wrapper batched-exchange metric handles, recorded at the same
/// sites that emit `TraceKind::WrapperFill`. One exchange increments
/// `mix_wrapper_fills_total` and adds the per-hole items shipped
/// (requested plus pushed continuations) to
/// `mix_wrapper_fill_items_total` — their ratio is the wrapper-side view
/// of batching effectiveness.
#[derive(Clone, Debug)]
pub struct WrapperMetrics {
    registry: MetricsRegistry,
    fills: Counter,
    items: Counter,
}

impl WrapperMetrics {
    /// Register the two series for this `(wrapper, source)` in `registry`.
    pub fn new(registry: &MetricsRegistry, wrapper: &'static str, source: &str) -> Self {
        let l = &[("wrapper", wrapper), ("source", source)][..];
        WrapperMetrics {
            registry: registry.clone(),
            fills: registry.counter(
                "mix_wrapper_fills_total",
                "Batched fill exchanges answered by the wrapper",
                l,
            ),
            items: registry.counter(
                "mix_wrapper_fill_items_total",
                "Per-hole items shipped across batched exchanges",
                l,
            ),
        }
    }

    /// Record one batched exchange that shipped `items` per-hole replies.
    #[inline]
    pub fn record_fill(&self, items: u64) {
        if self.registry.is_enabled() {
            self.fills.inc();
            self.items.add(items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(3);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = Gauge::new();
        g.add(10);
        assert_eq!(g.sub_saturating(3), 3);
        assert_eq!(g.get(), 7);
        assert_eq!(g.sub_saturating(100), 7, "saturates and reports the applied delta");
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn log2_bucketing_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is ≥ the value.
        for v in [0u64, 1, 5, 100, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(bucket_bound(bucket_index(v)) >= v, "{v}");
        }
    }

    #[test]
    fn histogram_quantiles_read_bucket_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        // p50 ≈ 50 → bucket bound 63; p99 ≈ 99 → bucket bound 127, capped
        // at the exact max.
        assert_eq!(snap.quantile(0.5), 63);
        assert_eq!(snap.quantile(0.99), 100);
        assert_eq!(snap.quantile(1.0), 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn registry_upserts_shared_series() {
        let reg = MetricsRegistry::enabled();
        let a = reg.counter("mix_x_total", "x", &[("source", "s1")]);
        let b = reg.counter("mix_x_total", "x", &[("source", "s1")]);
        let other = reg.counter("mix_x_total", "x", &[("source", "s2")]);
        a.add(2);
        b.add(3);
        other.add(7);
        assert_eq!(reg.len(), 2, "same (name, labels) share one series");
        let snap = reg.snapshot();
        assert_eq!(snap.value("mix_x_total", &[("source", "s1")]), Some(5));
        assert_eq!(snap.total("mix_x_total"), 12);
    }

    #[test]
    fn bound_counters_are_the_same_cells() {
        let reg = MetricsRegistry::enabled();
        let c = Counter::new();
        c.add(9);
        reg.bind_counter("mix_y_total", "y", &[], &c);
        assert_eq!(reg.snapshot().value("mix_y_total", &[]), Some(9));
        c.add(1);
        assert_eq!(reg.snapshot().value("mix_y_total", &[]), Some(10));
        // Re-binding replaces the series.
        let c2 = Counter::new();
        reg.bind_counter("mix_y_total", "y", &[], &c2);
        assert_eq!(reg.snapshot().value("mix_y_total", &[]), Some(0));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn delta_since_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::enabled();
        let c = reg.counter("mix_c_total", "c", &[]);
        let h = reg.histogram("mix_h", "h", &[]);
        c.add(5);
        h.observe(10);
        let before = reg.snapshot();
        c.add(2);
        h.observe(10);
        h.observe(1000);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.value("mix_c_total", &[]), Some(2));
        let hd = delta.histogram("mix_h", &[]).unwrap();
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 1010);
    }

    #[test]
    fn disabled_registry_is_one_flag_read() {
        let reg = MetricsRegistry::off();
        assert!(!reg.is_enabled());
        reg.set_enabled(true);
        assert!(reg.is_enabled());
        reg.set_enabled(false);
        assert!(!reg.is_enabled());
    }

    #[test]
    fn prometheus_rendering_has_headers_buckets_and_labels() {
        let reg = MetricsRegistry::enabled();
        reg.counter("mix_req_total", "Requests", &[("source", "db")]).add(3);
        let h = reg.histogram("mix_lat", "Latency", &[("source", "db")]);
        h.observe(1);
        h.observe(5);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP mix_req_total Requests"));
        assert!(text.contains("# TYPE mix_req_total counter"));
        assert!(text.contains("mix_req_total{source=\"db\"} 3"));
        assert!(text.contains("# TYPE mix_lat histogram"));
        assert!(text.contains("mix_lat_bucket{source=\"db\",le=\"1\"} 1"));
        assert!(text.contains("mix_lat_bucket{source=\"db\",le=\"+Inf\"} 2"));
        assert!(text.contains("mix_lat_sum{source=\"db\"} 6"));
        assert!(text.contains("mix_lat_count{source=\"db\"} 2"));
    }

    #[test]
    fn json_export_is_valid_shape() {
        let reg = MetricsRegistry::enabled();
        reg.counter("mix_a_total", "a", &[("k", "v\"q")]).add(1);
        reg.histogram("mix_b", "b", &[]).observe(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"mix_a_total\""));
        assert!(json.contains("\\\"q"), "label values are escaped: {json}");
        assert!(json.contains("\"buckets\":[[3,1]]"));
    }

    #[test]
    fn retry_metrics_record_only_when_enabled() {
        let reg = MetricsRegistry::off();
        let m = RetryMetrics::new(&reg, "db");
        m.record_retry();
        assert_eq!(reg.snapshot().total("mix_retries_total"), 0);
        reg.set_enabled(true);
        m.record_retry();
        m.record_breaker_open();
        let snap = reg.snapshot();
        assert_eq!(snap.value("mix_retries_total", &[("source", "db")]), Some(1));
        assert_eq!(snap.value("mix_breaker_opens_total", &[("source", "db")]), Some(1));
    }

    #[test]
    fn unregister_removes_exactly_one_series() {
        let reg = MetricsRegistry::enabled();
        let c = reg.counter("mix_cmds_total", "cmds", &[("session", "1")]);
        reg.counter("mix_cmds_total", "cmds", &[("session", "2")]).add(7);
        assert_eq!(reg.len(), 2);
        assert!(reg.unregister("mix_cmds_total", &[("session", "1")]));
        assert!(!reg.unregister("mix_cmds_total", &[("session", "1")]), "already gone");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.snapshot().value("mix_cmds_total", &[("session", "2")]), Some(7));
        // The handle still works — it is just no longer exported.
        c.add(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn unregister_labeled_sweeps_a_whole_session() {
        let reg = MetricsRegistry::enabled();
        reg.counter("mix_a_total", "a", &[("session", "9"), ("kind", "d")]);
        reg.gauge("mix_b", "b", &[("session", "9")]);
        reg.counter("mix_a_total", "a", &[("session", "10")]);
        assert_eq!(reg.unregister_labeled("session", "9"), 2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.unregister_labeled("session", "9"), 0);
    }
}
