//! An LXP wrapper over in-memory documents with pluggable fill policies.
//!
//! [`TreeWrapper`] plays the role of a generic wrapped source: it owns one
//! or more materialized [`Document`]s and answers `fill` requests at the
//! granularity chosen by its [`FillPolicy`] — the "wrapper controls the
//! granularity at which it exports data" principle of §4. The policies
//! model the paper's examples: node-at-a-time ("ideal" sources), n-at-a-
//! time bulk transfer ("a relational source may return chunks of 100
//! tuples at a time"), whole documents, and the size-threshold streaming
//! of Web wrappers ("start streaming of huge documents by sending complete
//! elements if their size does not exceed a certain limit, say 50K").
//!
//! Hole ids are self-describing (`uri|c|node|index`), so the wrapper keeps
//! no lookup table — the same trick as the relational wrapper's
//! `db_name.table.row_number` ids.

use crate::adaptive::AimdChunk;
use crate::fragment::Fragment;
use crate::lxp::{chase_continuation, BatchItem, HoleId, LxpError, LxpWrapper};
use mix_xml::{Document, NodeId, Tree};
use std::collections::HashMap;
use std::sync::Arc;

/// How much of the requested region a fill reply carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillPolicy {
    /// One shallow node per fill (finest granularity; every navigation is
    /// a round trip — the situation §4 calls prohibitively expensive).
    NodeAtATime,
    /// Up to `n` complete sibling subtrees per fill, with a trailing hole
    /// while more remain (bulk transfer).
    Chunked { n: usize },
    /// The whole remaining region in one reply.
    WholeSubtree,
    /// All remaining siblings, each sent complete when its subtree has at
    /// most `max_nodes` nodes and shallow (with a child hole) otherwise —
    /// the Web wrapper's streaming heuristic.
    SizeThreshold { max_nodes: usize },
    /// Like `Chunked`, but the chunk follows an [`AimdChunk`] controller:
    /// additive growth on sequential fills, multiplicative shrink on
    /// random access or waste, starting at `initial` subtrees per fill.
    Adaptive { initial: usize },
}

/// LXP wrapper over a registry of in-memory documents.
pub struct TreeWrapper {
    docs: HashMap<String, Arc<Document>>,
    policy: FillPolicy,
    /// Chunk controller, present under `FillPolicy::Adaptive`.
    adaptive: Option<AimdChunk>,
    /// Where the previous children fill left off: `(uri, parent node,
    /// next start)` — the adaptive controller's sequentiality oracle.
    last_fill: Option<(String, usize, usize)>,
    /// One-entry memo of the most recently collected child list, keyed
    /// by `(uri, parent)`. A scan fills the same parent's children once
    /// per chunk; re-collecting the whole list each time is O(children)
    /// per fill — quadratic over the scan. Documents are immutable
    /// behind `Arc`, so the memo only needs invalidating when a uri is
    /// re-registered.
    kids_memo: Option<(String, usize, Arc<[NodeId]>)>,
    /// Continuation items appended per `fill_many` exchange (0 = none).
    batch_budget: usize,
}

impl TreeWrapper {
    /// An empty registry with the given policy.
    pub fn new(policy: FillPolicy) -> Self {
        let adaptive = match policy {
            FillPolicy::Adaptive { initial } => Some(AimdChunk::with_initial(initial)),
            _ => None,
        };
        TreeWrapper {
            docs: HashMap::new(),
            policy,
            adaptive,
            last_fill: None,
            kids_memo: None,
            batch_budget: 0,
        }
    }

    /// Allow up to `budget` wrapper-pushed continuation items per
    /// `fill_many` exchange (see [`chase_continuation`]).
    pub fn with_batch_budget(mut self, budget: usize) -> Self {
        self.batch_budget = budget;
        self
    }

    /// The chunk the adaptive controller would use for the next fill
    /// (`None` unless the policy is [`FillPolicy::Adaptive`]).
    pub fn current_chunk(&self) -> Option<usize> {
        self.adaptive.as_ref().map(AimdChunk::chunk)
    }

    /// Register a document under a URI.
    pub fn add(&mut self, uri: impl Into<String>, doc: Arc<Document>) {
        self.docs.insert(uri.into(), doc);
        // The uri may have been re-registered with different content.
        self.kids_memo = None;
    }

    /// Convenience: a wrapper exporting a single tree as `doc`.
    pub fn single(tree: &Tree, policy: FillPolicy) -> Self {
        let mut w = TreeWrapper::new(policy);
        w.add("doc", Arc::new(Document::from_tree(tree)));
        w
    }

    /// The active fill policy.
    pub fn policy(&self) -> FillPolicy {
        self.policy
    }

    fn doc(&self, uri: &str) -> Result<&Arc<Document>, LxpError> {
        self.docs.get(uri).ok_or_else(|| LxpError::UnknownSource(uri.to_string()))
    }

    /// Shallow fragment: the node's label with one hole for all children.
    fn shallow(&self, uri: &str, doc: &Document, node: NodeId) -> Fragment {
        if doc.down(node).is_none() {
            Fragment::Node { label: doc.fetch(node).clone(), children: Vec::new() }
        } else {
            Fragment::Node {
                label: doc.fetch(node).clone(),
                children: vec![Fragment::Hole(children_hole(uri, node, 0))],
            }
        }
    }

    /// Complete fragment for a subtree.
    fn complete(doc: &Document, node: NodeId) -> Fragment {
        Fragment::from_tree(&doc.subtree(node))
    }

    /// Complete-subtree chunk reply: `take` subtrees plus a trailing hole
    /// while more remain (shared by `Chunked` and `Adaptive`).
    fn chunk_reply(
        doc: &Arc<Document>,
        uri: &str,
        parent: NodeId,
        start: usize,
        rest: &[NodeId],
        take: usize,
    ) -> Vec<Fragment> {
        let mut out: Vec<Fragment> = rest[..take].iter().map(|&c| Self::complete(doc, c)).collect();
        if rest.len() > take {
            out.push(Fragment::Hole(children_hole(uri, parent, start + take)));
        }
        out
    }

    fn fill_children(
        &mut self,
        uri: &str,
        doc: &Arc<Document>,
        parent: NodeId,
        start: usize,
    ) -> Vec<Fragment> {
        let kids: Arc<[NodeId]> = match &self.kids_memo {
            Some((u, p, kids)) if u == uri && *p == parent.index() => Arc::clone(kids),
            _ => {
                let kids: Arc<[NodeId]> = doc.children(parent).collect();
                self.kids_memo = Some((uri.to_string(), parent.index(), Arc::clone(&kids)));
                kids
            }
        };
        if start >= kids.len() {
            return Vec::new();
        }
        let rest = &kids[start..];
        match self.policy {
            FillPolicy::NodeAtATime => {
                let mut out = vec![self.shallow(uri, doc, rest[0])];
                if rest.len() > 1 {
                    out.push(Fragment::Hole(children_hole(uri, parent, start + 1)));
                }
                out
            }
            FillPolicy::Chunked { n } => {
                let take = n.max(1).min(rest.len());
                Self::chunk_reply(doc, uri, parent, start, rest, take)
            }
            FillPolicy::Adaptive { .. } => {
                let ctl = self.adaptive.as_mut().expect("adaptive policy has a controller");
                match &self.last_fill {
                    Some((u, p, next)) if u == uri && *p == parent.index() && *next == start => {
                        ctl.on_sequential()
                    }
                    // A backwards jump re-requests data already shipped:
                    // the earlier chunk tail was wasted.
                    Some((u, p, next)) if u == uri && *p == parent.index() && start < *next => {
                        ctl.on_waste()
                    }
                    Some(_) => ctl.on_random(),
                    None => {}
                }
                let take = ctl.chunk().min(rest.len());
                self.last_fill = Some((uri.to_string(), parent.index(), start + take));
                Self::chunk_reply(doc, uri, parent, start, rest, take)
            }
            FillPolicy::WholeSubtree => {
                rest.iter().map(|&c| Self::complete(doc, c)).collect()
            }
            FillPolicy::SizeThreshold { max_nodes } => rest
                .iter()
                .map(|&c| {
                    // `subtree_len` counts via preorder-id arithmetic —
                    // materializing the subtree just to size it made the
                    // threshold check as expensive as always sending it.
                    if doc.subtree_len(c) <= max_nodes {
                        Self::complete(doc, c)
                    } else {
                        self.shallow(uri, doc, c)
                    }
                })
                .collect(),
        }
    }
}

fn children_hole(uri: &str, parent: NodeId, start: usize) -> HoleId {
    format!("{uri}|c|{}|{start}", parent.index())
}

fn root_hole(uri: &str) -> HoleId {
    format!("{uri}|root")
}

impl LxpWrapper for TreeWrapper {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        self.doc(uri)?;
        Ok(root_hole(uri))
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        let parts: Vec<&str> = hole.split('|').collect();
        match parts.as_slice() {
            [uri, "root"] => {
                let doc = self.doc(uri)?.clone();
                let frag = match self.policy {
                    FillPolicy::WholeSubtree => Self::complete(&doc, doc.root()),
                    _ => self.shallow(uri, &doc, doc.root()),
                };
                Ok(vec![frag])
            }
            [uri, "c", node, start] => {
                let doc = self.doc(uri)?.clone();
                let node: usize = node
                    .parse()
                    .map_err(|_| LxpError::UnknownHole(hole.clone()))?;
                let start: usize = start
                    .parse()
                    .map_err(|_| LxpError::UnknownHole(hole.clone()))?;
                if node >= doc.len() {
                    return Err(LxpError::UnknownHole(hole.clone()));
                }
                Ok(self.fill_children(uri, &doc, NodeId::from_index(node), start))
            }
            _ => Err(LxpError::UnknownHole(hole.clone())),
        }
    }

    /// Batched fills with wrapper-pushed continuation: after answering the
    /// requested holes, chase up to `batch_budget` further holes of this
    /// exchange's own replies — a sequential scan's whole chunk frontier
    /// arrives in one round trip.
    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        let mut items = Vec::with_capacity(holes.len());
        for h in holes {
            items.push(BatchItem { hole: h.clone(), fragments: self.fill(h)? });
        }
        let budget = self.batch_budget;
        chase_continuation(self, &mut items, budget);
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lxp::check_progress;
    use mix_xml::term::parse_term;

    fn wrapper(term: &str, policy: FillPolicy) -> TreeWrapper {
        TreeWrapper::single(&parse_term(term).unwrap(), policy)
    }

    #[test]
    fn get_root_then_fill_yields_root_element() {
        let mut w = wrapper("a[b,c]", FillPolicy::NodeAtATime);
        let h = w.get_root("doc").unwrap();
        let reply = w.fill(&h).unwrap();
        assert_eq!(reply.len(), 1);
        let Fragment::Node { label, children } = &reply[0] else { panic!() };
        assert_eq!(label, "a");
        assert_eq!(children.len(), 1);
        assert!(children[0].is_hole());
    }

    #[test]
    fn unknown_source_and_holes_error() {
        let mut w = wrapper("a", FillPolicy::NodeAtATime);
        assert!(matches!(w.get_root("nope"), Err(LxpError::UnknownSource(_))));
        assert!(matches!(w.fill(&"garbage".to_string()), Err(LxpError::UnknownHole(_))));
        assert!(matches!(
            w.fill(&"doc|c|999|0".to_string()),
            Err(LxpError::UnknownHole(_))
        ));
    }

    #[test]
    fn node_at_a_time_reveals_one_node_per_fill() {
        let mut w = wrapper("r[a,b,c]", FillPolicy::NodeAtATime);
        let reply = w.fill(&"doc|c|0|0".to_string()).unwrap();
        // [a, ◦next]
        assert_eq!(reply.len(), 2);
        assert_eq!(reply[0], Fragment::leaf("a"));
        assert!(reply[1].is_hole());
        // Last child: no trailing hole.
        let last = w.fill(&"doc|c|0|2".to_string()).unwrap();
        assert_eq!(last, vec![Fragment::leaf("c")]);
        // Past the end: empty reply.
        assert_eq!(w.fill(&"doc|c|0|3".to_string()).unwrap(), vec![]);
    }

    #[test]
    fn chunked_returns_n_complete_tuples() {
        // The paper's relational wrapper: n tuples at a time, each
        // complete ("the wrapper does not have to deal with navigations at
        // the attribute level").
        let mut w = wrapper(
            "view[tuple[a[1]],tuple[a[2]],tuple[a[3]],tuple[a[4]],tuple[a[5]]]",
            FillPolicy::Chunked { n: 2 },
        );
        let reply = w.fill(&"doc|c|0|0".to_string()).unwrap();
        assert_eq!(reply.len(), 3); // 2 tuples + hole
        assert!(reply[0].is_closed() && reply[1].is_closed());
        assert!(reply[2].is_hole());
        // Follow the hole.
        let Fragment::Hole(h) = &reply[2] else { panic!() };
        let reply2 = w.fill(h).unwrap();
        assert_eq!(reply2.len(), 3); // tuples 3,4 + hole
        let Fragment::Hole(h2) = &reply2[2] else { panic!() };
        let reply3 = w.fill(h2).unwrap();
        assert_eq!(reply3.len(), 1); // final tuple, no hole
        assert!(reply3[0].is_closed());
    }

    #[test]
    fn whole_subtree_sends_everything() {
        let mut w = wrapper("a[b[d,e],c]", FillPolicy::WholeSubtree);
        let h = w.get_root("doc").unwrap();
        let reply = w.fill(&h).unwrap();
        assert_eq!(reply.len(), 1);
        assert!(reply[0].is_closed());
        assert_eq!(reply[0].to_tree().unwrap().to_string(), "a[b[d,e],c]");
    }

    #[test]
    fn size_threshold_streams_small_elements_whole() {
        // big subtree stays shallow, small ones arrive complete.
        let mut w = wrapper(
            "page[small[x],huge[a,b,c,d,e,f,g,h],tiny]",
            FillPolicy::SizeThreshold { max_nodes: 3 },
        );
        let reply = w.fill(&"doc|c|0|0".to_string()).unwrap();
        assert_eq!(reply.len(), 3);
        assert!(reply[0].is_closed(), "small is complete");
        assert!(!reply[1].is_closed(), "huge is shallow with a hole");
        assert!(reply[2].is_closed(), "tiny is complete");
    }

    #[test]
    fn every_policy_respects_lxp_progress() {
        for policy in [
            FillPolicy::NodeAtATime,
            FillPolicy::Chunked { n: 1 },
            FillPolicy::Chunked { n: 3 },
            FillPolicy::WholeSubtree,
            FillPolicy::SizeThreshold { max_nodes: 2 },
        ] {
            let mut w = wrapper("r[a[p,q],b,c[z]]", policy);
            // Exhaustively fill everything reachable, checking progress.
            let mut queue = vec![w.get_root("doc").unwrap()];
            let mut fills = 0;
            while let Some(h) = queue.pop() {
                let reply = w.fill(&h).unwrap();
                check_progress(&reply).unwrap();
                fills += 1;
                assert!(fills < 1000, "non-terminating policy {policy:?}");
                fn collect(f: &Fragment, q: &mut Vec<HoleId>) {
                    match f {
                        Fragment::Hole(h) => q.push(h.clone()),
                        Fragment::Node { children, .. } => {
                            children.iter().for_each(|c| collect(c, q))
                        }
                    }
                }
                reply.iter().for_each(|f| collect(f, &mut queue));
            }
        }
    }

    #[test]
    fn adaptive_chunks_grow_on_sequential_scans() {
        let term = format!(
            "r[{}]",
            (0..200).map(|i| format!("t{i}")).collect::<Vec<_>>().join(",")
        );
        let mut w = wrapper(&term, FillPolicy::Adaptive { initial: 2 });
        assert_eq!(w.current_chunk(), Some(2));
        // Scan: follow the trailing hole of each reply.
        let mut hole = "doc|c|0|0".to_string();
        let mut fills = 0;
        loop {
            let reply = w.fill(&hole).unwrap();
            fills += 1;
            match reply.last() {
                Some(Fragment::Hole(h)) => hole = h.clone(),
                _ => break,
            }
        }
        assert!(w.current_chunk().unwrap() > 2, "chunk grew under the scan");
        // Growing chunks need far fewer fills than fixed chunk 2 (100).
        assert!(fills < 30, "adaptive scan took {fills} fills");
    }

    #[test]
    fn adaptive_chunks_shrink_on_random_access() {
        let term = format!(
            "r[{}]",
            (0..100).map(|i| format!("t{i}")).collect::<Vec<_>>().join(",")
        );
        let mut w = wrapper(&term, FillPolicy::Adaptive { initial: 32 });
        // Random probes at scattered positions.
        for start in [50usize, 3, 80, 20, 66] {
            let _ = w.fill(&format!("doc|c|0|{start}")).unwrap();
        }
        assert!(
            w.current_chunk().unwrap() < 32,
            "chunk shrank to {:?} under random access",
            w.current_chunk()
        );
    }

    #[test]
    fn adaptive_replies_respect_lxp_progress() {
        let mut w = wrapper("r[a[p,q],b,c[z],d,e]", FillPolicy::Adaptive { initial: 1 });
        let mut queue = vec![w.get_root("doc").unwrap()];
        while let Some(h) = queue.pop() {
            let reply = w.fill(&h).unwrap();
            check_progress(&reply).unwrap();
            fn collect(f: &Fragment, q: &mut Vec<HoleId>) {
                match f {
                    Fragment::Hole(h) => q.push(h.clone()),
                    Fragment::Node { children, .. } => children.iter().for_each(|c| collect(c, q)),
                }
            }
            reply.iter().for_each(|f| collect(f, &mut queue));
        }
    }

    #[test]
    fn fill_many_with_budget_streams_the_scan_frontier() {
        let term = format!(
            "view[{}]",
            (0..30).map(|i| format!("t[v{i}]")).collect::<Vec<_>>().join(",")
        );
        let mut w = wrapper(&term, FillPolicy::Chunked { n: 3 }).with_batch_budget(4);
        let first = w.fill(&"doc|c|0|0".to_string()).unwrap();
        let Some(Fragment::Hole(h)) = first.last() else { panic!("trailing hole") };
        // One exchange: the requested chunk plus 4 continuation chunks.
        let items = w.fill_many(std::slice::from_ref(h)).unwrap();
        assert_eq!(items.len(), 5, "1 requested + 4 continuation items");
        assert_eq!(&items[0].hole, h);
        // Continuation items answer the successive trailing holes.
        for pair in items.windows(2) {
            let Some(Fragment::Hole(next)) = pair[0].fragments.last() else {
                panic!("chunk reply ends with a trailing hole")
            };
            assert_eq!(&pair[1].hole, next);
        }
    }

    #[test]
    fn fill_many_without_budget_matches_the_default() {
        let mut w = wrapper("r[a,b,c,d]", FillPolicy::NodeAtATime);
        let holes: Vec<HoleId> = vec!["doc|c|0|0".into(), "doc|c|0|2".into()];
        let items = w.fill_many(&holes).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].fragments, w.fill(&holes[0]).unwrap());
        assert_eq!(items[1].fragments, w.fill(&holes[1]).unwrap());
    }

    #[test]
    fn multiple_documents_under_distinct_uris() {
        let mut w = TreeWrapper::new(FillPolicy::WholeSubtree);
        w.add("homes", Arc::new(Document::from_tree(&parse_term("homes[h1]").unwrap())));
        w.add("schools", Arc::new(Document::from_tree(&parse_term("schools[s1]").unwrap())));
        let h1 = w.get_root("homes").unwrap();
        let h2 = w.get_root("schools").unwrap();
        assert_ne!(h1, h2);
        assert_eq!(w.fill(&h1).unwrap()[0].to_tree().unwrap().label(), "homes");
        assert_eq!(w.fill(&h2).unwrap()[0].to_tree().unwrap().label(), "schools");
    }
}
