//! # mix-buffer — open trees, LXP, and the generic buffer component
//!
//! The fine-grained DOM-VXD navigation model is "often prohibitively
//! expensive for navigating on the sources" (paper §4): every `d`/`r`/`f`
//! would become a wrapper round-trip. MIX's refined architecture inserts a
//! *generic buffer component* between each lazy mediator and its wrapper
//! (Figure 7):
//!
//! ```text
//!   Lazy Mediator
//!     │  DOM-VXD navigations (d, r, f) — node-at-a-time
//!   Buffer Component          ← this crate
//!     │  LXP requests: fill(hole[id]) — wrapper-chosen granularity
//!   Wrapper → Source
//! ```
//!
//! The buffer stores **open XML trees**: partial versions of the wrapper's
//! view containing *holes* for unexplored parts (Defs. 3–4). When a
//! navigation "hits a hole", the buffer issues a `fill` request through the
//! **Lean XML fragment Protocol** (LXP, two commands: `get_root` and
//! `fill`); the wrapper replies with a fragment list that may itself
//! contain further holes, at whatever granularity it prefers — n relational
//! tuples, a whole page, or single nodes.
//!
//! * [`fragment`] — open trees / fragments, the hole-representation
//!   semantics of Defs. 3–4 and Example 6;
//! * [`lxp`] — the protocol trait (`get_root`, `fill`, and the batched
//!   `fill_many` extension) and its progress invariants;
//! * [`adaptive`] — the AIMD chunk-size controller wrappers use to adapt
//!   fill granularity to the observed access pattern;
//! * [`buffer`] — the buffer component: a [`Navigator`] that maintains the
//!   open tree and chases holes (the `d(p)`/`chase_first` algorithm of
//!   Figure 8, generalized to the most liberal protocol);
//! * [`cache`] — the shared cross-query [`FragmentCache`]: a byte-budgeted
//!   LRU of verified fill replies keyed by `(source, hole id)` with
//!   per-source epoch invalidation, so repeated navigations across
//!   independent queries/sessions cost zero wire exchanges;
//! * [`prefetch`] — a readahead adapter rendering §4's "asynchronous
//!   prefetching strategy": fills answered from the readahead cache leave
//!   the critical path;
//! * [`treewrap`] — an LXP wrapper over in-memory documents with pluggable
//!   [`FillPolicy`]s, used by tests, the web-source simulator, and the
//!   granularity experiments;
//! * [`slow`] — [`SlowWrapper`], injected per-exchange wire latency for
//!   the concurrency experiments (sequential pays the sum of source
//!   latencies, parallel the max);
//! * [`retry`] — retry with exponential simulated backoff and a
//!   per-source circuit breaker, applied to every LXP request the buffer
//!   issues;
//! * [`health`] — the queryable [`SourceHealth`] surface recording
//!   absorbed faults, recovery cost, and degraded operations;
//! * [`fault`] — [`FaultyWrapper`], a seeded fault injector for testing
//!   and measuring the above;
//! * [`trace`] — the flight recorder: ring-buffered [`TraceEvent`]s
//!   (fills, retries, breaker transitions, degradations, prefetch
//!   hits/misses) shared between buffers and the engine via span ids;
//! * [`metrics`] — the aggregation complement to the recorder: a
//!   lock-light [`MetricsRegistry`] of atomic counters, gauges, and
//!   log₂-bucket histograms, zero-cost when off, exportable as JSON or
//!   Prometheus text.
//!
//! The buffer never panics on wrapper failure: transient source errors
//! are retried away; anything worse degrades navigation gracefully
//! (`None` / empty label) and is recorded in the buffer's health handle.
//!
//! [`Navigator`]: mix_nav::Navigator
//! [`FillPolicy`]: treewrap::FillPolicy
//! [`SourceHealth`]: health::SourceHealth
//! [`FaultyWrapper`]: fault::FaultyWrapper
//! [`TraceEvent`]: trace::TraceEvent
//! [`MetricsRegistry`]: metrics::MetricsRegistry

pub mod adaptive;
pub mod buffer;
pub mod cache;
pub mod fault;
pub mod fragment;
pub mod health;
pub mod lxp;
pub mod metrics;
pub mod pool;
pub mod prefetch;
pub mod retry;
pub mod slow;
pub mod trace;
pub mod treewrap;
pub mod worker;

pub use adaptive::AimdChunk;
pub use buffer::{BufNodeId, BufferError, BufferNavigator, BufferStats, BufferStatsSnapshot};
pub use cache::{FragmentCache, FragmentCacheStats, SourceCacheStats, DEFAULT_CACHE_BUDGET};
pub use fault::{FaultConfig, FaultStats, FaultyWrapper};
pub use fragment::Fragment;
pub use health::{HealthSnapshot, HealthStatus, SourceHealth};
pub use lxp::{chase_continuation, BatchItem, HoleId, LxpError, LxpWrapper, SharedWrapper};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsRegistry, MetricsSnapshot,
    RetryMetrics, Sample, SampleValue, WrapperMetrics,
};
pub use pool::{configured_threads, lock_unpoisoned, run_parallel, wait_unpoisoned, OverlapGauge};
pub use prefetch::Prefetcher;
pub use retry::{RetryError, RetryPolicy, RetryState};
pub use slow::SlowWrapper;
pub use trace::{TraceEvent, TraceKind, TraceSink, DEFAULT_TRACE_CAPACITY};
pub use treewrap::{FillPolicy, TreeWrapper};
pub use worker::{ConcurrentPrefetcher, DEFAULT_PREFETCH_CAP};
