//! Prefetching between buffer and wrapper.
//!
//! §4: "a buffer can be used to decouple the client-driven view navigation
//! ('pull from above') and the production of results by the wrapped source
//! ('push from below') based on an asynchronous prefetching strategy."
//!
//! [`Prefetcher`] is a synchronous rendering of that idea: a wrapper
//! adapter that, after answering a fill, immediately follows up to `depth`
//! holes of the reply and stores their replies in a readahead cache. A
//! later fill that hits the cache is answered without touching the inner
//! wrapper — off the *critical path*, which is what asynchrony buys when
//! source latency overlaps client think time. The cache-miss count is the
//! number of round trips the client actually waits for.

use crate::fragment::Fragment;
use crate::health::SourceHealth;
use crate::lxp::{check_progress, BatchItem, HoleId, LxpError, LxpWrapper};
use crate::metrics::{Counter, MetricsRegistry};
use crate::trace::{TraceKind, TraceSink};
use std::collections::{HashMap, HashSet};

/// Gated prefetch metrics (see [`Prefetcher::with_metrics`]).
#[derive(Clone, Debug)]
struct PrefetchMetrics {
    registry: MetricsRegistry,
    hits: Counter,
    misses: Counter,
    failures: Counter,
}

/// A readahead adapter around any LXP wrapper.
pub struct Prefetcher<W> {
    inner: W,
    /// How many holes of each reply to pre-fill.
    depth: usize,
    cache: HashMap<HoleId, Vec<Fragment>>,
    hits: u64,
    misses: u64,
    /// Speculative fills that errored (best-effort, skipped — but
    /// recorded, not silent).
    failures: u64,
    /// Optional health handle to report readahead failures to.
    health: Option<SourceHealth>,
    /// Flight recorder (off by default).
    trace: TraceSink,
    /// Live metrics (absent by default).
    metrics: Option<PrefetchMetrics>,
    /// The URI seen at `get_root`, used to attribute trace events.
    tag: Option<String>,
}

impl<W: LxpWrapper> Prefetcher<W> {
    /// Wrap `inner`, pre-filling up to `depth` holes per reply.
    pub fn new(inner: W, depth: usize) -> Self {
        Prefetcher {
            inner,
            depth,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
            failures: 0,
            health: None,
            trace: TraceSink::default(),
            metrics: None,
            tag: None,
        }
    }

    /// Report readahead failures to `health` (as `prefetch_failures`).
    pub fn with_health(mut self, health: SourceHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Attach a flight recorder for hit/miss/failure events.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Record readahead hits/misses/failures into a shared metrics
    /// registry, labelled `source`. Recording is guarded behind the
    /// registry's enabled flag.
    pub fn with_metrics(mut self, registry: &MetricsRegistry, source: &str) -> Self {
        let l = &[("source", source)][..];
        self.metrics = Some(PrefetchMetrics {
            registry: registry.clone(),
            hits: registry.counter(
                "mix_prefetch_hits_total",
                "Fills answered from the readahead cache",
                l,
            ),
            misses: registry.counter(
                "mix_prefetch_misses_total",
                "Fills that went to the inner wrapper on the critical path",
                l,
            ),
            failures: registry.counter(
                "mix_prefetch_failures_total",
                "Speculative readahead fills that errored and were skipped",
                l,
            ),
        });
        self
    }

    /// Fills answered from the readahead cache (not waited for).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fills that had to go to the inner wrapper on the critical path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Speculative readahead fills that failed and were skipped.
    pub fn readahead_failures(&self) -> u64 {
        self.failures
    }

    /// Holes currently sitting pre-filled in the cache.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// The wrapped wrapper.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Pre-fill up to `budget` holes found in `reply`, trailing sibling
    /// holes first — the direction a scanning client moves — recursing
    /// into pre-filled replies while budget remains.
    ///
    /// Readahead is best-effort and off the critical path: a hole whose
    /// speculative fill errors is simply skipped (the client's own fill
    /// will face — and retry — that error on the critical path), and a
    /// reply that violates the LXP progress invariant is dropped rather
    /// than cached, so the buffer's protocol checking still sees it when
    /// the client really asks.
    /// Readahead runs in *batched rounds*: each round gathers up to
    /// `budget` pending holes and answers them through one `fill_many`
    /// exchange, so wide readahead costs one round trip instead of one
    /// per hole. If the batched exchange itself errors, the round falls
    /// back to best-effort one-hole fills (old behavior).
    fn readahead(&mut self, reply: &[Fragment], budget: &mut usize) {
        fn collect(frags: &[Fragment], stack: &mut Vec<HoleId>) {
            for f in frags {
                match f {
                    Fragment::Hole(h) => stack.push(h.clone()),
                    Fragment::Node { children, .. } => collect(children, stack),
                }
            }
        }
        let mut stack: Vec<HoleId> = Vec::new();
        collect(reply, &mut stack);
        // Holes were pushed in document order, so popping serves the
        // trailing-most hole first.
        while *budget > 0 {
            let mut round: Vec<HoleId> = Vec::new();
            let mut in_round: HashSet<HoleId> = HashSet::new();
            while round.len() < *budget {
                let Some(h) = stack.pop() else { break };
                if self.cache.contains_key(&h) || in_round.contains(&h) {
                    continue;
                }
                in_round.insert(h.clone());
                round.push(h);
            }
            if round.is_empty() {
                break;
            }
            match self.inner.fill_many(&round) {
                Ok(items) => {
                    *budget = budget.saturating_sub(round.len());
                    for item in items {
                        // Continuation items beyond the requested round
                        // are free extra readahead — cached, not charged.
                        if check_progress(&item.fragments).is_err()
                            || self.cache.contains_key(&item.hole)
                        {
                            continue;
                        }
                        collect(&item.fragments, &mut stack);
                        self.cache.insert(item.hole, item.fragments);
                    }
                }
                Err(_) => {
                    for h in round {
                        match self.inner.fill(&h) {
                            Ok(r) => {
                                *budget = budget.saturating_sub(1);
                                if check_progress(&r).is_err() {
                                    continue;
                                }
                                collect(&r, &mut stack);
                                self.cache.insert(h, r);
                            }
                            Err(e) => {
                                // Skipped, but never silently: the failure
                                // is counted, reported to health, and
                                // recorded by the flight recorder.
                                self.failures += 1;
                                if let Some(health) = &self.health {
                                    health.record_prefetch_failure();
                                }
                                if let Some(m) = &self.metrics {
                                    if m.registry.is_enabled() {
                                        m.failures.inc();
                                    }
                                }
                                if self.trace.is_enabled() {
                                    self.trace.emit(
                                        self.tag.as_deref(),
                                        TraceKind::PrefetchFail {
                                            hole: h.clone(),
                                            error: e.to_string(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Record a cache hit or miss for `hole`.
    fn note(&mut self, hole: &HoleId, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if let Some(m) = &self.metrics {
            if m.registry.is_enabled() {
                if hit {
                    m.hits.inc();
                } else {
                    m.misses.inc();
                }
            }
        }
        if self.trace.is_enabled() {
            let kind = if hit {
                TraceKind::PrefetchHit { hole: hole.clone() }
            } else {
                TraceKind::PrefetchMiss { hole: hole.clone() }
            };
            self.trace.emit(self.tag.as_deref(), kind);
        }
    }
}

impl<W: LxpWrapper> LxpWrapper for Prefetcher<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        self.tag = Some(uri.to_string());
        self.inner.get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        let reply = match self.cache.remove(hole) {
            Some(r) => {
                self.note(hole, true);
                r
            }
            None => {
                self.note(hole, false);
                self.inner.fill(hole)?
            }
        };
        let mut budget = self.depth;
        self.readahead(&reply, &mut budget);
        Ok(reply)
    }

    /// Batched fills through the cache: cached holes are answered without
    /// inner traffic, the rest go to the inner wrapper in one batch, and
    /// inner continuation items are passed through to the client.
    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        let uncached: Vec<HoleId> =
            holes.iter().filter(|h| !self.cache.contains_key(*h)).cloned().collect();
        let mut fetched: HashMap<HoleId, Vec<Fragment>> = HashMap::new();
        let mut extra: Vec<BatchItem> = Vec::new();
        if !uncached.is_empty() {
            let items = self.inner.fill_many(&uncached)?;
            for (i, item) in items.into_iter().enumerate() {
                if i < uncached.len() {
                    fetched.insert(item.hole, item.fragments);
                } else {
                    extra.push(item);
                }
            }
        }
        let mut out = Vec::with_capacity(holes.len() + extra.len());
        for h in holes {
            if let Some(r) = self.cache.remove(h) {
                self.note(h, true);
                out.push(BatchItem { hole: h.clone(), fragments: r });
            } else if let Some(r) = fetched.remove(h) {
                self.note(h, false);
                out.push(BatchItem { hole: h.clone(), fragments: r });
            } else {
                // The inner wrapper violated the batch shape; surface it
                // as a protocol error rather than inventing a reply.
                return Err(LxpError::ProtocolViolation(format!(
                    "inner fill_many did not answer `{h}`"
                )));
            }
        }
        out.extend(extra);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferNavigator;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_nav::explore::materialize;
    use mix_xml::term::parse_term;
    use mix_xml::Tree;

    fn wide_tree(n: usize) -> Tree {
        let children =
            (0..n).map(|i| parse_term(&format!("item[v{i}]")).unwrap()).collect();
        Tree::node("r", children)
    }

    #[test]
    fn prefetch_is_transparent() {
        let tree = wide_tree(20);
        for depth in [0usize, 1, 4, 16] {
            let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
            let mut nav = BufferNavigator::new(Prefetcher::new(inner, depth), "doc");
            assert_eq!(materialize(&mut nav), tree, "depth {depth}");
        }
    }

    #[test]
    fn readahead_moves_fills_off_the_critical_path() {
        let tree = wide_tree(64);
        // Measure directly at the wrapper level: scan all children holes
        // by hand.
        let scan = |depth: usize| -> (u64, u64) {
            let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
            let mut pf = Prefetcher::new(inner, depth);
            let root_hole = pf.get_root("doc").unwrap();
            let mut queue = vec![root_hole];
            while let Some(h) = queue.pop() {
                let reply = pf.fill(&h).unwrap();
                fn holes(frags: &[Fragment], q: &mut Vec<HoleId>) {
                    for f in frags {
                        match f {
                            Fragment::Hole(h) => q.push(h.clone()),
                            Fragment::Node { children, .. } => holes(children, q),
                        }
                    }
                }
                holes(&reply, &mut queue);
            }
            (pf.hits(), pf.misses())
        };
        let (_h0, m0) = scan(0);
        let (h4, m4) = scan(4);
        assert_eq!(scan(0).0, 0, "depth 0 never hits");
        assert!(m4 * 3 < m0, "depth 4 misses {m4} vs no-prefetch misses {m0}");
        assert!(h4 > 0);
    }

    #[test]
    fn depth_zero_is_a_plain_passthrough() {
        let tree = wide_tree(5);
        let inner = TreeWrapper::single(&tree, FillPolicy::Chunked { n: 2 });
        let mut pf = Prefetcher::new(inner, 0);
        let h = pf.get_root("doc").unwrap();
        let _ = pf.fill(&h).unwrap();
        assert_eq!(pf.hits(), 0);
        assert_eq!(pf.misses(), 1);
        assert_eq!(pf.cached(), 0);
    }

    #[test]
    fn errors_pass_through() {
        let inner = TreeWrapper::single(&wide_tree(2), FillPolicy::NodeAtATime);
        let mut pf = Prefetcher::new(inner, 2);
        assert!(pf.get_root("nope").is_err());
        assert!(pf.fill(&"garbage".to_string()).is_err());
    }

    /// A wrapper with a fixed reply per hole id, for observing exactly
    /// which holes readahead chooses.
    struct Scripted {
        replies: HashMap<HoleId, Vec<Fragment>>,
    }

    impl LxpWrapper for Scripted {
        fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
            Ok("root".into())
        }
        fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
            self.replies
                .get(hole)
                .cloned()
                .ok_or_else(|| LxpError::UnknownHole(hole.clone()))
        }
    }

    #[test]
    fn tight_budget_prefers_trailing_holes() {
        // fill(root) = [a, ◦lead, b, ◦trail] — a scanning client reads
        // left to right, so the hole it reaches next is the trailing one.
        let replies = HashMap::from([
            (
                "root".to_string(),
                vec![
                    Fragment::leaf("a"),
                    Fragment::hole("lead"),
                    Fragment::leaf("b"),
                    Fragment::hole("trail"),
                ],
            ),
            ("lead".to_string(), vec![Fragment::leaf("x")]),
            ("trail".to_string(), vec![Fragment::leaf("y")]),
        ]);
        let mut pf = Prefetcher::new(Scripted { replies }, 1);
        let root = pf.get_root("doc").unwrap();
        let _ = pf.fill(&root).unwrap();
        assert_eq!(pf.cached(), 1, "budget 1 pre-fills exactly one hole");
        // The trailing hole is served from cache; the leading one is not.
        let _ = pf.fill(&"trail".to_string()).unwrap();
        assert_eq!(pf.hits(), 1, "trailing hole was the one cached");
        let _ = pf.fill(&"lead".to_string()).unwrap();
        assert_eq!(pf.misses(), 2, "leading hole went to the wrapper (plus the root fill)");
    }

    #[test]
    fn fill_many_serves_cached_holes_without_inner_traffic() {
        let tree = wide_tree(8);
        let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
        let mut pf = Prefetcher::new(inner, 4);
        let root = pf.get_root("doc").unwrap();
        let reply = pf.fill(&root).unwrap();
        assert!(pf.cached() > 0, "readahead warmed the cache");
        // Ask for the reply's hole via the batched entry point: a hit.
        fn first_hole(frags: &[Fragment]) -> HoleId {
            for f in frags {
                match f {
                    Fragment::Hole(h) => return h.clone(),
                    Fragment::Node { children, .. } => {
                        if !children.is_empty() {
                            return first_hole(children);
                        }
                    }
                }
            }
            panic!("no hole in reply")
        }
        let h = first_hole(&reply);
        let hits_before = pf.hits();
        let items = pf.fill_many(std::slice::from_ref(&h)).unwrap();
        assert_eq!(items[0].hole, h);
        assert_eq!(pf.hits(), hits_before + 1, "served from the readahead cache");
    }

    #[test]
    fn batched_readahead_preserves_transparency() {
        // The prefetcher's batched rounds must not change what a client
        // materializes.
        let tree = wide_tree(32);
        for depth in [0usize, 1, 5, 16] {
            let inner = TreeWrapper::single(&tree, FillPolicy::Chunked { n: 3 });
            let mut nav = BufferNavigator::new(Prefetcher::new(inner, depth), "doc");
            assert_eq!(materialize(&mut nav), tree, "depth {depth}");
        }
    }

    #[test]
    fn failed_readahead_fills_are_recorded_not_silent() {
        // fill_many always errors, so readahead falls back to one-hole
        // fills; `dead` errors there too. Before the fix that hole was
        // skipped without a trace — now it is counted, reported to
        // health, and recorded by the flight recorder.
        struct HalfDead {
            replies: HashMap<HoleId, Vec<Fragment>>,
        }
        impl LxpWrapper for HalfDead {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("root".into())
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                self.replies
                    .get(hole)
                    .cloned()
                    .ok_or_else(|| LxpError::SourceError(format!("{hole} unreachable")))
            }
            fn fill_many(&mut self, _holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
                Err(LxpError::SourceError("no batch endpoint".into()))
            }
        }
        let replies = HashMap::from([
            ("root".to_string(), vec![Fragment::hole("ok"), Fragment::hole("dead")]),
            ("ok".to_string(), vec![Fragment::leaf("x")]),
        ]);
        let health = SourceHealth::new();
        let sink = crate::trace::TraceSink::enabled(64);
        let mut pf = Prefetcher::new(HalfDead { replies }, 4)
            .with_health(health.clone())
            .with_trace(sink.clone());
        let root = pf.get_root("doc").unwrap();
        let _ = pf.fill(&root).unwrap();
        assert_eq!(pf.readahead_failures(), 1, "the dead hole's failure was counted");
        assert_eq!(health.snapshot().prefetch_failures, 1, "…and reported to health");
        assert_eq!(
            health.status(),
            crate::health::HealthStatus::Healthy,
            "best-effort failures do not degrade the answer"
        );
        let fails: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceKind::PrefetchFail { .. }))
            .collect();
        assert_eq!(fails.len(), 1);
        assert!(matches!(
            &fails[0].kind,
            TraceKind::PrefetchFail { hole, error }
                if hole == "dead" && error.contains("unreachable")
        ));
        assert_eq!(fails[0].source.as_deref(), Some("doc"), "tagged with the get_root uri");
        assert_eq!(pf.cached(), 1, "the healthy hole was still pre-filled");
    }

    #[test]
    fn hits_and_misses_are_traced() {
        let tree = wide_tree(8);
        let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
        let sink = crate::trace::TraceSink::enabled(256);
        let mut pf = Prefetcher::new(inner, 4).with_trace(sink.clone());
        let root = pf.get_root("doc").unwrap();
        let _ = pf.fill(&root).unwrap();
        let events = sink.events();
        assert!(
            events.iter().any(|e| matches!(e.kind, TraceKind::PrefetchMiss { .. })),
            "the root fill was a miss: {events:?}"
        );
    }

    #[test]
    fn hit_miss_counters_flow_into_a_shared_registry() {
        let tree = wide_tree(16);
        let reg = MetricsRegistry::enabled();
        let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
        let mut nav = BufferNavigator::new(
            Prefetcher::new(inner, 4).with_metrics(&reg, "doc"),
            "doc",
        );
        assert_eq!(materialize(&mut nav), tree);
        let snap = reg.snapshot();
        let l = &[("source", "doc")][..];
        let hits = snap.value("mix_prefetch_hits_total", l).unwrap();
        let misses = snap.value("mix_prefetch_misses_total", l).unwrap();
        assert!(hits > 0, "readahead hit");
        assert!(misses > 0, "at least the root fill missed");
        // An off registry records nothing, while the local counters keep
        // counting.
        let off = MetricsRegistry::off();
        let inner = TreeWrapper::single(&tree, FillPolicy::NodeAtATime);
        let mut pf = Prefetcher::new(inner, 4).with_metrics(&off, "doc");
        let root = pf.get_root("doc").unwrap();
        let _ = pf.fill(&root).unwrap();
        assert!(pf.misses() > 0);
        assert_eq!(off.snapshot().value("mix_prefetch_misses_total", l), Some(0));
    }

    #[test]
    fn progress_violating_replies_are_never_cached() {
        // fill(bad) breaks the progress invariant (only holes). The
        // prefetcher must drop it so the buffer's own protocol check sees
        // the violation on the critical path.
        let replies = HashMap::from([
            ("root".to_string(), vec![Fragment::leaf("a"), Fragment::hole("bad")]),
            ("bad".to_string(), vec![Fragment::hole("x"), Fragment::hole("y")]),
        ]);
        let mut pf = Prefetcher::new(Scripted { replies }, 4);
        let root = pf.get_root("doc").unwrap();
        let _ = pf.fill(&root).unwrap();
        assert_eq!(pf.cached(), 0, "violating reply dropped, not cached");
        // The client's own fill still receives the raw violating reply.
        let raw = pf.fill(&"bad".to_string()).unwrap();
        assert!(raw.iter().all(Fragment::is_hole));
    }
}
