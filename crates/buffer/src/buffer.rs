//! The generic buffer component (paper §4, Figures 7–8).
//!
//! A [`BufferNavigator`] exposes the wrapper's view through plain DOM-VXD
//! navigation while maintaining an *open tree* internally. Navigation that
//! stays within explored territory is answered from the buffer; navigation
//! that hits a hole triggers `fill` requests until the requested node
//! materializes (the recursive `d(p)`/`chase_first` algorithm of Figure 8,
//! generalized to the most liberal LXP protocol where replies may contain
//! holes at arbitrary positions).
//!
//! Termination relies on the protocol's progress invariant: every fill
//! either removes a hole (empty reply) or contributes at least one real
//! node, and the open tree only refines towards the finite source tree.
//!
//! # Fault tolerance
//!
//! Every LXP request runs under a [`RetryPolicy`]: transient wrapper
//! errors (`LxpError::SourceError`) are retried with exponential simulated
//! backoff, and a per-source circuit breaker quarantines a persistently
//! failing source. Faults the retry layer cannot absorb do **not** panic:
//! the DOM-VXD navigation degrades gracefully (`down`/`right` answer
//! `None`, `fetch` answers the empty label) and the failure is recorded in
//! the buffer's [`SourceHealth`] handle, which clients, the engine, and
//! the profiler can query.

use crate::cache::{cache_forced, FragmentCache};
use crate::fragment::{Fragment, HoleSlot, OpenTree, TreeEntry};
use crate::health::SourceHealth;
use crate::lxp::{check_batch_shape, check_progress, HoleId, LxpWrapper};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, RetryMetrics};
use crate::pool::lock_unpoisoned;
use crate::retry::{RetryError, RetryPolicy, RetryState};
use crate::trace::{TraceKind, TraceSink};
use mix_nav::Navigator;
use mix_xml::Label;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub use crate::fragment::BufNodeId;

/// Shared counters describing buffer/wrapper traffic.
///
/// These are *always on* — they are the single source of truth behind
/// `Engine::traffic()` and the profiler — and since this PR they are
/// metric cells ([`Counter`]/[`Gauge`]), so [`BufferStats::bind_into`]
/// can register the very same storage in a [`MetricsRegistry`]: a
/// metrics snapshot, the engine's traffic surface, and the trace rollup
/// all read identical memory, by construction.
#[derive(Clone, Default, Debug)]
pub struct BufferStats {
    fills: Counter,
    get_roots: Counter,
    nodes_received: Counter,
    bytes_received: Counter,
    requests: Counter,
    batched_holes: Counter,
    /// A gauge, not a counter: consuming a parked batch reply *credits*
    /// its bytes back.
    wasted_bytes: Gauge,
}

/// A point-in-time copy of [`BufferStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStatsSnapshot {
    /// Per-hole fill replies consumed by the buffer (one per wire `fill`
    /// in unbatched mode; in batched mode also counts replies served from
    /// the pending batch cache).
    pub fills: u64,
    /// `get_root` requests (0 or 1 per source).
    pub get_roots: u64,
    /// Non-hole fragment nodes received.
    pub nodes_received: u64,
    /// Approximate bytes received (see `Fragment::wire_bytes`).
    pub bytes_received: u64,
    /// Wire exchanges for fills (`fill` or `fill_many` calls). Equals
    /// `fills` in unbatched mode; the whole point of batching is pushing
    /// this far below `fills`.
    pub requests: u64,
    /// Per-hole replies received across batched exchanges (requested plus
    /// wrapper-pushed continuation items).
    pub batched_holes: u64,
    /// Bytes received speculatively and not (or not yet) consumed:
    /// dropped protocol-violating continuation items plus batch-cache
    /// entries still waiting for a navigation to need them.
    pub wasted_bytes: u64,
}

impl BufferStatsSnapshot {
    /// Average holes answered per wire exchange (1.0 when unbatched).
    pub fn holes_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.batched_holes.max(self.requests) as f64 / self.requests as f64
        }
    }
}

impl BufferStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        BufferStats::default()
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            fills: self.fills.get(),
            get_roots: self.get_roots.get(),
            nodes_received: self.nodes_received.get(),
            bytes_received: self.bytes_received.get(),
            requests: self.requests.get(),
            batched_holes: self.batched_holes.get(),
            wasted_bytes: self.wasted_bytes.get(),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.fills.reset();
        self.get_roots.reset();
        self.nodes_received.reset();
        self.bytes_received.reset();
        self.requests.reset();
        self.batched_holes.reset();
        self.wasted_bytes.set(0);
    }

    /// Register these counters' *cells* in `registry` under the canonical
    /// `mix_*` wire-traffic series, labelled with `source` — the
    /// deduplication point: after this, `snapshot()` and the registry
    /// read the same storage.
    pub fn bind_into(&self, registry: &MetricsRegistry, source: &str) {
        let l = &[("source", source)][..];
        registry.bind_counter(
            "mix_fills_total",
            "Per-hole fill replies consumed by the buffer",
            l,
            &self.fills,
        );
        registry.bind_counter("mix_get_roots_total", "LXP get_root requests", l, &self.get_roots);
        registry.bind_counter(
            "mix_nodes_received_total",
            "Non-hole fragment nodes received",
            l,
            &self.nodes_received,
        );
        registry.bind_counter(
            "mix_bytes_received_total",
            "Approximate wire bytes received",
            l,
            &self.bytes_received,
        );
        registry.bind_counter(
            "mix_requests_total",
            "Wire exchanges for fills (fill or fill_many calls)",
            l,
            &self.requests,
        );
        registry.bind_counter(
            "mix_batched_holes_total",
            "Per-hole replies received across batched exchanges",
            l,
            &self.batched_holes,
        );
        registry.bind_gauge(
            "mix_wasted_bytes",
            "Speculative bytes not (or not yet) consumed by navigation",
            l,
            &self.wasted_bytes,
        );
    }
}

/// Gated (enabled-guarded) buffer metrics beyond the always-on traffic
/// counters: latency/size distributions, batch-cache effectiveness,
/// retries, and degradations. Recording costs one relaxed flag read when
/// the registry is off.
#[derive(Clone, Debug)]
pub(crate) struct BufMetrics {
    registry: MetricsRegistry,
    fill_latency_ns: Histogram,
    fill_bytes: Histogram,
    batch_cache_hits: Counter,
    batch_cache_misses: Counter,
    batch_cache_evictions: Counter,
    degradations: Counter,
    pub(crate) retry: RetryMetrics,
}

impl BufMetrics {
    fn new(registry: &MetricsRegistry, source: &str) -> Self {
        let l = &[("source", source)][..];
        BufMetrics {
            registry: registry.clone(),
            fill_latency_ns: registry.histogram(
                "mix_fill_latency_ns",
                "Wall-clock nanoseconds per wire fill exchange",
                l,
            ),
            fill_bytes: registry.histogram(
                "mix_fill_bytes",
                "Wire bytes per fill exchange",
                l,
            ),
            batch_cache_hits: registry.counter(
                "mix_batch_cache_hits_total",
                "Fills answered from the pending batch cache (no wire)",
                l,
            ),
            batch_cache_misses: registry.counter(
                "mix_batch_cache_misses_total",
                "Batched fills that had to go to the wire",
                l,
            ),
            batch_cache_evictions: registry.counter(
                "mix_batch_cache_evictions_total",
                "Pending batch replies evicted by the cap before any navigation needed them",
                l,
            ),
            degradations: registry.counter(
                "mix_degradations_total",
                "Navigations answered from the degradation fallback",
                l,
            ),
            retry: RetryMetrics::new(registry, source),
        }
    }

    #[inline]
    fn on(&self) -> bool {
        self.registry.is_enabled()
    }
}

/// Why a buffer operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// An LXP request failed beyond what retries could absorb (permanent
    /// error, retries exhausted, or circuit open).
    Lxp {
        /// The request that failed, e.g. `fill(db.homes.3)`.
        request: String,
        /// What the retry layer concluded.
        error: RetryError,
    },
    /// The wrapper never produced the document's root element.
    RootUnavailable {
        /// The document URI.
        uri: String,
        /// What went wrong.
        reason: String,
    },
    /// A fill loop stopped making progress (fuel exhausted).
    Stalled {
        /// The navigation being answered.
        context: String,
    },
    /// The buffer arena outgrew its 32-bit id space.
    CapacityExceeded {
        /// Materialized nodes at the time of the failure.
        nodes: usize,
    },
    /// A navigation handle that cannot exist in the current buffer —
    /// usually a handle used after the connection failed.
    InvalidHandle {
        /// The offending handle's index.
        index: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::Lxp { request, error } => write!(f, "{request}: {error}"),
            BufferError::RootUnavailable { uri, reason } => {
                write!(f, "no root element for `{uri}`: {reason}")
            }
            BufferError::Stalled { context } => {
                write!(f, "wrapper made no progress while {context}")
            }
            BufferError::CapacityExceeded { nodes } => {
                write!(f, "buffer capacity exceeded at {nodes} nodes")
            }
            BufferError::InvalidHandle { index } => {
                write!(f, "navigation handle #{index} is not materialized")
            }
        }
    }
}

impl std::error::Error for BufferError {}

/// The buffer component: a [`Navigator`] over the open tree fed by an LXP
/// wrapper.
///
/// # Errors
/// Navigation never panics on wrapper failure. Transient source errors
/// are retried per the buffer's [`RetryPolicy`]; anything beyond that
/// degrades the navigation (`None` / empty label) and is recorded in the
/// [`SourceHealth`] handle returned by [`BufferNavigator::health`].
pub struct BufferNavigator<W> {
    wrapper: W,
    uri: String,
    /// The open tree: arena-allocated nodes, pooled child lists, and a
    /// hole slab whose live records double as the document-order hole
    /// index (so batched fills enumerate holes without walking the tree).
    tree: OpenTree,
    /// Scratch buffers reused across splices so the steady-state fill
    /// path performs no per-splice vector allocations.
    entry_scratch: Vec<TreeEntry>,
    hole_scratch: Vec<HoleSlot>,
    connected: bool,
    stats: BufferStats,
    policy: RetryPolicy,
    retry: RetryState,
    health: SourceHealth,
    /// Batched-fill mode: holes per `fill_many` exchange. `<= 1` keeps the
    /// classic one-hole-per-round-trip protocol (and its exact fill
    /// counts) byte-for-byte unchanged.
    batch_limit: usize,
    /// Replies received in a batch before any navigation needed them,
    /// keyed by hole id. Consumed instead of going back to the wire.
    /// `Arc`-backed: the same allocation is shared with the cross-query
    /// cache, so parking and consuming a reply never copies fragments.
    /// Bounded by `pending_cap`; see `pending_order`.
    pending: std::collections::HashMap<HoleId, Arc<Vec<Fragment>>>,
    /// Insertion order of `pending` entries, for capped FIFO eviction.
    /// May contain stale ids of entries already consumed; eviction skips
    /// them lazily.
    pending_order: VecDeque<HoleId>,
    /// Upper bound on parked `pending` entries. Fragments parked for
    /// holes the client never navigates to would otherwise accumulate
    /// for the life of the navigator.
    pending_cap: usize,
    /// Always-on count of pending entries evicted by the cap.
    pending_evictions: Counter,
    /// The shared cross-query fragment cache, if one was attached
    /// ([`BufferNavigator::with_fragment_cache`]). Checked before the
    /// wire on every fill; populated with every verified reply.
    cache: Option<FragmentCache>,
    /// Flight recorder for this conversation (off by default).
    trace: TraceSink,
    /// Live metrics for this conversation. Backed by a default-constructed
    /// (off, unless `MIX_METRICS_FORCE=1`) registry until
    /// [`BufferNavigator::with_metrics`] hands in a shared one.
    metrics: BufMetrics,
    /// Monotone count of degraded navigations — the epoch a caller
    /// compares around a navigation to tell a degraded fallback from a
    /// legitimate answer.
    degraded_epoch: AtomicU64,
    /// The error behind the most recent degradation.
    last_degraded: Mutex<Option<String>>,
    /// Upper bound on fills per single navigation command (`FILL_FUEL`
    /// unless overridden for tests).
    fill_fuel: u32,
}

impl<W: LxpWrapper> BufferNavigator<W> {
    /// Create a buffer over `wrapper`, exporting the document at `uri`,
    /// with the default retry policy. No wrapper traffic happens until
    /// the first navigation.
    pub fn new(wrapper: W, uri: impl Into<String>) -> Self {
        BufferNavigator::with_retry(wrapper, uri, RetryPolicy::default())
    }

    /// Create a buffer with an explicit retry/backoff/breaker policy.
    pub fn with_retry(wrapper: W, uri: impl Into<String>, policy: RetryPolicy) -> Self {
        let uri: String = uri.into();
        let registry = MetricsRegistry::default();
        let stats = BufferStats::new();
        stats.bind_into(&registry, &uri);
        BufferNavigator {
            wrapper,
            metrics: BufMetrics::new(&registry, &uri),
            uri,
            tree: OpenTree::new(),
            entry_scratch: Vec::new(),
            hole_scratch: Vec::new(),
            connected: false,
            stats,
            policy,
            retry: RetryState::new(),
            health: SourceHealth::new(),
            batch_limit: 1,
            pending: std::collections::HashMap::new(),
            pending_order: VecDeque::new(),
            pending_cap: DEFAULT_PENDING_CAP,
            pending_evictions: Counter::new(),
            // Forced mode attaches a *private* cache so the whole suite
            // exercises the cache code paths without cross-test aliasing
            // of uris; an explicit `with_fragment_cache` overrides it.
            cache: cache_forced().then(FragmentCache::new),
            trace: TraceSink::default(),
            degraded_epoch: AtomicU64::new(0),
            last_degraded: Mutex::new(None),
            fill_fuel: FILL_FUEL,
        }
    }

    /// Attach a flight recorder. Hand the engine's sink here so buffer
    /// events inherit the span of the client command that caused them.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// Attach a shared metrics registry. The buffer's always-on traffic
    /// counters are (re)bound into it under `mix_*` series labelled with
    /// this buffer's uri, and the gated series (fill latency/size
    /// histograms, batch-cache hits/misses, retries, degradations) start
    /// recording whenever the registry is enabled. Hand the engine's
    /// registry here so one snapshot covers the whole mediator stack.
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.stats.bind_into(&registry, &self.uri);
        self.metrics = BufMetrics::new(&registry, &self.uri);
        if let Some(cache) = &self.cache {
            cache.bind_into(&registry);
        }
        self
    }

    /// A handle to the metrics registry this buffer records into.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.metrics.registry.clone()
    }

    /// Record fault/retry health into `handle` instead of a private cell.
    /// Hand the same handle to every session navigator over one physical
    /// source and the pool-level health aggregates across sessions — how
    /// the serve layer's `/healthz` sees one row per source, not one per
    /// session.
    pub fn with_health(mut self, handle: SourceHealth) -> Self {
        self.health = handle;
        self
    }

    /// Override the per-navigation fill budget (default [`FILL_FUEL`]).
    /// Tests use a tiny budget to assert that a wrapper which keeps the
    /// buffer busy without progress fails loudly instead of hanging.
    pub fn with_fill_fuel(mut self, fuel: u32) -> Self {
        self.fill_fuel = fuel.max(1);
        self
    }

    /// Switch on batched fills: each wire exchange carries the critical
    /// hole plus up to `batch_limit - 1` other currently-known holes of
    /// the open tree, answered in one `fill_many`. Replies for holes the
    /// navigation has not reached yet wait in a pending cache; the open
    /// tree itself evolves exactly as under one-hole fills. A limit of 0
    /// or 1 disables batching.
    pub fn batched(mut self, batch_limit: usize) -> Self {
        self.batch_limit = batch_limit.max(1);
        self
    }

    /// Is batched-fill mode on?
    pub fn is_batching(&self) -> bool {
        self.batch_limit > 1
    }

    /// Attach a shared cross-query [`FragmentCache`]. Every fill checks
    /// it before going to the wire (after the navigator's own pending
    /// batch cache) and every verified reply — single fills, `get_root`,
    /// and all `fill_many` items — populates it, so a second navigator
    /// over the same source replays the exploration with zero wire
    /// exchanges. Opt-in, like [`BufferNavigator::batched`]; hand the
    /// same cache to every buffer that should share fragments.
    pub fn with_fragment_cache(mut self, cache: FragmentCache) -> Self {
        cache.bind_into(&self.metrics.registry);
        self.cache = Some(cache);
        self
    }

    /// The shared fragment cache, if one is attached.
    pub fn fragment_cache(&self) -> Option<FragmentCache> {
        self.cache.clone()
    }

    /// Cap the pending batch cache at `cap` parked replies (default
    /// [`DEFAULT_PENDING_CAP`]); the oldest parked reply is evicted
    /// first. Their bytes were already counted as waste when parked, so
    /// eviction changes no traffic arithmetic.
    pub fn pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }

    /// Batch-cache entries received but not yet consumed by navigation.
    pub fn pending_replies(&self) -> usize {
        self.pending.len()
    }

    /// Parked batch replies evicted by the pending cap so far.
    pub fn pending_evictions(&self) -> u64 {
        self.pending_evictions.get()
    }

    /// A shared handle to this buffer's traffic counters.
    pub fn stats(&self) -> BufferStats {
        self.stats.clone()
    }

    /// A shared handle to this buffer's fault/retry health.
    pub fn health(&self) -> SourceHealth {
        self.health.clone()
    }

    /// A shared handle to this buffer's flight recorder.
    pub fn trace_sink(&self) -> TraceSink {
        self.trace.clone()
    }

    /// Monotone count of navigations answered from the degradation
    /// fallback (`None` / empty label). Compare around a navigation: an
    /// unchanged epoch proves the answer was real; a bumped epoch means
    /// it (or an interleaved navigation) degraded.
    pub fn degraded_epoch(&self) -> u64 {
        self.degraded_epoch.load(Ordering::Relaxed)
    }

    /// The error behind the most recent degraded navigation, if any.
    pub fn last_degraded(&self) -> Option<String> {
        lock_unpoisoned(&self.last_degraded).clone()
    }

    /// Forgive the source: zero the health counters, forget the failure
    /// streak, and close the circuit breaker so the next navigation talks
    /// to the wrapper again. Records a [`TraceKind::BreakerClose`] event
    /// when the breaker was actually open.
    pub fn reset_faults(&mut self) {
        let was_open = self.retry.is_open();
        self.retry.reset();
        self.health.reset();
        *lock_unpoisoned(&self.last_degraded) = None;
        if was_open && self.trace.is_enabled() {
            self.trace.emit(Some(self.uri.as_str()), TraceKind::BreakerClose);
        }
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Tear down the buffer and recover the wrapper (for reading
    /// wrapper-side statistics after an experiment).
    pub fn into_wrapper(self) -> W {
        self.wrapper
    }

    /// The number of materialized nodes currently buffered.
    pub fn buffered_nodes(&self) -> usize {
        self.tree.node_count()
    }

    /// Render the current open tree in the paper's `r[a,◦2]` notation
    /// (diagnostics and tests).
    pub fn open_tree(&self) -> Option<Fragment> {
        if !self.connected {
            return None;
        }
        Some(self.tree.fragment_of(BufNodeId::ROOT))
    }

    /// Serve `hole` from the shared cross-query cache, if one is
    /// attached and holds a fresh entry. A hit costs zero wire
    /// exchanges — and zero fragment copies: the returned `Arc` shares
    /// the cached allocation. Only `fills` advances (no requests, nodes,
    /// or bytes).
    fn cache_lookup(&mut self, hole: &HoleId) -> Option<Arc<Vec<Fragment>>> {
        let cache = self.cache.as_ref()?;
        let reply = cache.lookup(&self.uri, hole)?;
        self.stats.fills.inc();
        if self.trace.is_enabled() {
            let (mut nodes, mut bytes) = (0u64, 0u64);
            for f in reply.iter() {
                nodes += f.node_count() as u64;
                bytes += f.wire_bytes() as u64;
            }
            self.trace.emit(
                Some(self.uri.as_str()),
                TraceKind::CacheHit { hole: hole.clone(), nodes, bytes },
            );
        }
        Some(reply)
    }

    /// Admit a verified reply into the shared cache (if attached),
    /// tracing the admission and any LRU evictions it caused. The cache
    /// stores a clone of the `Arc`, not of the fragments. Only replies
    /// that already passed the progress checks reach this point, so
    /// faults can never be cached.
    fn cache_store(&self, hole: &HoleId, reply: &Arc<Vec<Fragment>>) {
        let Some(cache) = &self.cache else { return };
        let evicted = cache.insert(&self.uri, hole, reply);
        if self.trace.is_enabled() {
            let bytes: u64 = reply.iter().map(|f| f.wire_bytes() as u64).sum();
            self.trace.emit(
                Some(self.uri.as_str()),
                TraceKind::CacheStore { hole: hole.clone(), bytes },
            );
            for (src, h, b) in evicted {
                self.trace.emit(
                    Some(src.as_str()),
                    TraceKind::CacheEvict { scope: "shared", hole: h, bytes: b },
                );
            }
        }
    }

    /// Resolve one hole under the retry policy, via a single `fill` (the
    /// classic path) or a batched `fill_many` exchange. Progress is
    /// checked inside the retried operation, so a protocol-violating
    /// reply surfaces as a permanent error (and counts against the
    /// breaker) instead of being buffered.
    fn try_fill(&mut self, hole: &HoleId) -> Result<Arc<Vec<Fragment>>, BufferError> {
        if self.batch_limit > 1 {
            return self.try_fill_batched(hole);
        }
        if let Some(reply) = self.cache_lookup(hole) {
            return Ok(reply);
        }
        let timer = self.metrics.on().then(Instant::now);
        let wrapper = &mut self.wrapper;
        let reply = self
            .retry
            .run_observed(
                &self.policy,
                &self.health,
                &self.trace,
                Some(&self.metrics.retry),
                Some(self.uri.as_str()),
                hole,
                || {
                    let reply = wrapper.fill(hole)?;
                    check_progress(&reply)?;
                    Ok(reply)
                },
            )
            .map_err(|error| BufferError::Lxp { request: format!("fill({hole})"), error })?;
        let reply = Arc::new(reply);
        self.stats.fills.inc();
        self.stats.requests.inc();
        let (mut nodes, mut bytes) = (0u64, 0u64);
        for f in reply.iter() {
            nodes += f.node_count() as u64;
            bytes += f.wire_bytes() as u64;
        }
        self.stats.nodes_received.add(nodes);
        self.stats.bytes_received.add(bytes);
        if let Some(t) = timer {
            self.metrics.fill_latency_ns.observe(t.elapsed().as_nanos() as u64);
            self.metrics.fill_bytes.observe(bytes);
        }
        if self.trace.is_enabled() {
            self.trace.emit(
                Some(self.uri.as_str()),
                TraceKind::Fill {
                    hole: hole.clone(),
                    nodes,
                    bytes,
                    from_cache: false,
                    waste_credit: 0,
                },
            );
        }
        self.cache_store(hole, &reply);
        Ok(reply)
    }

    /// Batched-mode fill: serve `hole` from the pending batch cache if a
    /// prior exchange already answered it; otherwise issue one
    /// `fill_many` carrying `hole` plus other currently-known holes of
    /// the open tree, splice only `hole`'s reply, and stash the rest.
    fn try_fill_batched(&mut self, hole: &HoleId) -> Result<Arc<Vec<Fragment>>, BufferError> {
        if let Some(reply) = self.pending.remove(hole) {
            self.stats.fills.inc();
            if self.metrics.on() {
                self.metrics.batch_cache_hits.inc();
            }
            // The bytes are no longer speculative waste: a navigation
            // actually needed them.
            let bytes: u64 = reply.iter().map(|f| f.wire_bytes() as u64).sum();
            let credited = self.stats.wasted_bytes.sub_saturating(bytes);
            if self.trace.is_enabled() {
                let nodes: u64 = reply.iter().map(|f| f.node_count() as u64).sum();
                self.trace.emit(
                    Some(self.uri.as_str()),
                    TraceKind::Fill {
                        hole: hole.clone(),
                        nodes,
                        bytes,
                        from_cache: true,
                        // The delta actually applied, so trace rollups
                        // reproduce `wasted_bytes` exactly even at the
                        // saturation floor.
                        waste_credit: credited,
                    },
                );
            }
            return Ok(reply);
        }
        if let Some(reply) = self.cache_lookup(hole) {
            return Ok(reply);
        }
        let timer = self.metrics.on().then(Instant::now);
        let batch = self.known_holes(hole);
        let wrapper = &mut self.wrapper;
        // A reply the wrapper transferred but the protocol checks then
        // rejected: the wire cost is real and must not vanish from the
        // books just because nothing was consumed.
        let rejected: Cell<Option<(u64, u64, u64)>> = Cell::new(None);
        let result = self.retry.run_observed(
            &self.policy,
            &self.health,
            &self.trace,
            Some(&self.metrics.retry),
            Some(self.uri.as_str()),
            hole,
            || {
                let items = wrapper.fill_many(&batch)?;
                // The critical hole's reply is held to the progress
                // invariant strictly; continuation items are vetted (and
                // merely dropped) below.
                let vetted = check_batch_shape(&batch, &items)
                    .and_then(|()| check_progress(&items[0].fragments));
                if let Err(e) = vetted {
                    let (mut nodes, mut bytes) = (0u64, 0u64);
                    for it in &items {
                        for f in &it.fragments {
                            nodes += f.node_count() as u64;
                            bytes += f.wire_bytes() as u64;
                        }
                    }
                    rejected.set(Some((items.len() as u64, nodes, bytes)));
                    return Err(e);
                }
                Ok(items)
            },
        );
        let items = match result {
            Ok(items) => items,
            Err(error) => {
                if let Some((ritems, rnodes, rbytes)) = rejected.take() {
                    // The exchange happened and the items crossed the
                    // wire: attribute the request and its volume, all of
                    // it wasted for good.
                    self.stats.requests.inc();
                    self.stats.batched_holes.add(ritems);
                    self.stats.nodes_received.add(rnodes);
                    self.stats.bytes_received.add(rbytes);
                    self.stats.wasted_bytes.add(rbytes);
                    if self.trace.is_enabled() {
                        self.trace.emit(
                            Some(self.uri.as_str()),
                            TraceKind::FillManyFailed {
                                critical: hole.clone(),
                                holes: batch.len() as u64,
                                items: ritems,
                                nodes: rnodes,
                                bytes: rbytes,
                                wasted: rbytes,
                            },
                        );
                    }
                }
                return Err(BufferError::Lxp {
                    request: format!("fill_many({hole} +{} holes)", batch.len() - 1),
                    error,
                });
            }
        };
        self.stats.requests.inc();
        self.stats.batched_holes.add(items.len() as u64);
        self.stats.fills.inc();
        let item_count = items.len() as u64;
        let (mut total_nodes, mut total_bytes, mut total_wasted) = (0u64, 0u64, 0u64);
        let mut critical = None;
        for (k, item) in items.into_iter().enumerate() {
            let bytes: u64 = item.fragments.iter().map(|f| f.wire_bytes() as u64).sum();
            let nodes: u64 = item.fragments.iter().map(|f| f.node_count() as u64).sum();
            self.stats.nodes_received.add(nodes);
            self.stats.bytes_received.add(bytes);
            total_nodes += nodes;
            total_bytes += bytes;
            if k == 0 {
                let fragments = Arc::new(item.fragments);
                self.cache_store(hole, &fragments);
                critical = Some(fragments);
            } else if check_progress(&item.fragments).is_err()
                || item.hole == *hole
                || self.pending.contains_key(&item.hole)
            {
                // Violating or duplicate speculative reply: dropped — the
                // client's own fill will face it on the critical path —
                // and its bytes stay counted as waste for good.
                self.stats.wasted_bytes.add(bytes);
                total_wasted += bytes;
            } else {
                // Parked until a navigation needs it; counted as waste
                // until then (consumption credits it back). Verified
                // continuation items are shared cross-query, too — one
                // allocation, two `Arc` handles.
                self.stats.wasted_bytes.add(bytes);
                total_wasted += bytes;
                let fragments = Arc::new(item.fragments);
                self.cache_store(&item.hole, &fragments);
                self.pending_order.push_back(item.hole.clone());
                self.pending.insert(item.hole, fragments);
            }
        }
        self.enforce_pending_cap();
        if let Some(t) = timer {
            self.metrics.batch_cache_misses.inc();
            self.metrics.fill_latency_ns.observe(t.elapsed().as_nanos() as u64);
            self.metrics.fill_bytes.observe(total_bytes);
        }
        if self.trace.is_enabled() {
            self.trace.emit(
                Some(self.uri.as_str()),
                TraceKind::FillMany {
                    critical: hole.clone(),
                    holes: batch.len() as u64,
                    items: item_count,
                    nodes: total_nodes,
                    bytes: total_bytes,
                    wasted: total_wasted,
                },
            );
        }
        Ok(critical.expect("batch shape checked: first item answers the critical hole"))
    }

    /// Evict the oldest parked replies until the pending batch cache
    /// respects its cap. Evicted bytes were counted as waste when parked
    /// and stay waste — no traffic arithmetic changes, so trace rollups
    /// remain exact.
    fn enforce_pending_cap(&mut self) {
        while self.pending.len() > self.pending_cap {
            let Some(old) = self.pending_order.pop_front() else { break };
            if let Some(frags) = self.pending.remove(&old) {
                self.pending_evictions.inc();
                if self.metrics.on() {
                    self.metrics.batch_cache_evictions.inc();
                }
                if self.trace.is_enabled() {
                    let bytes: u64 = frags.iter().map(|f| f.wire_bytes() as u64).sum();
                    self.trace.emit(
                        Some(self.uri.as_str()),
                        TraceKind::CacheEvict { scope: "pending", hole: old, bytes },
                    );
                }
            }
        }
        // Compact stale order ids (entries already consumed by cache
        // hits) once they dominate, so the order index stays bounded too.
        if self.pending_order.len() > 2 * self.pending.len().max(self.pending_cap) {
            let pending = &self.pending;
            let order = &mut self.pending_order;
            order.retain(|h| pending.contains_key(h));
        }
    }

    /// The fill_many batch for a critical hole: the hole itself first,
    /// then other holes of the open tree in document order (the order a
    /// scanning client will want them), capped by the batch limit and
    /// excluding holes already answered in the pending cache.
    ///
    /// This used to re-walk the whole open tree per wire exchange —
    /// O(tree) work per batch that made batched fills *slower* than
    /// unbatched on scans. The arena maintains the holes as a
    /// document-order linked list, so the enumeration is O(batch limit).
    fn known_holes(&self, critical: &HoleId) -> Vec<HoleId> {
        let mut batch = vec![critical.clone()];
        if self.connected {
            for h in self.tree.holes_in_order() {
                if batch.len() >= self.batch_limit {
                    break;
                }
                if h != critical && !self.pending.contains_key(h) {
                    batch.push(h.clone());
                }
            }
        }
        batch
    }

    /// Establish the connection if necessary: `get_root`, then chase
    /// fills until the single root element appears. Holes around it
    /// necessarily represent zero elements (a document has one root) and
    /// are dropped. Failure leaves the buffer unconnected; a later
    /// navigation attempts the connection again (unless the breaker is
    /// open).
    fn try_ensure_connected(&mut self) -> Result<(), BufferError> {
        if self.connected {
            return Ok(());
        }
        let uri = self.uri.clone();
        // A warm session skips the `get_root` exchange too: the root
        // hole id is cached (epoch-guarded) alongside the fragments.
        let cached_root = self.cache.as_ref().and_then(|c| c.lookup_root(&uri));
        let mut hole = if let Some(h) = cached_root {
            h
        } else {
            self.stats.get_roots.inc();
            if self.trace.is_enabled() {
                self.trace.emit(Some(&uri), TraceKind::GetRoot { uri: uri.clone() });
            }
            let wrapper = &mut self.wrapper;
            let retry_metrics = self.metrics.retry.clone();
            let h = self
                .retry
                .run_observed(
                    &self.policy,
                    &self.health,
                    &self.trace,
                    Some(&retry_metrics),
                    Some(&uri),
                    &uri,
                    || wrapper.get_root(&uri),
                )
                .map_err(|error| BufferError::Lxp { request: format!("get_root({uri})"), error })?;
            if let Some(cache) = &self.cache {
                cache.insert_root(&uri, &h);
            }
            h
        };
        let mut fuel = self.fill_fuel;
        let root_frag = loop {
            let reply = self.try_fill(&hole)?;
            if reply.iter().any(|f| !f.is_hole()) {
                break reply;
            }
            match reply.first() {
                Some(Fragment::Hole(h)) => hole = h.clone(),
                _ => {
                    return Err(BufferError::RootUnavailable {
                        uri,
                        reason: "fill chain reached a dead end".into(),
                    })
                }
            }
            fuel -= 1;
            if fuel == 0 {
                return Err(BufferError::RootUnavailable {
                    uri,
                    reason: format!("no root element after {} fills", self.fill_fuel),
                });
            }
        };
        let node = root_frag.iter().find(|f| !f.is_hole()).expect("loop broke on a node");
        let Fragment::Node { label, children } = node else {
            return Err(BufferError::RootUnavailable {
                uri,
                reason: "wrapper produced a hole where the root was expected".into(),
            });
        };
        let mut new_holes = std::mem::take(&mut self.hole_scratch);
        new_holes.clear();
        let root = self.try_intern(label, children, None, 0, &mut new_holes)?;
        // The first holes of the session seed the document-order list.
        self.tree.relink_holes(None, &new_holes);
        self.hole_scratch = new_holes;
        debug_assert_eq!(root, BufNodeId::ROOT);
        self.connected = true;
        Ok(())
    }

    /// Materialize an element into the arena; returns the node id. Hole
    /// children get live slab slots, appended to `new_holes` in document
    /// order — the caller links them into the hole list in one go.
    fn try_intern(
        &mut self,
        label: &Label,
        children: &[Fragment],
        parent: Option<BufNodeId>,
        idx: usize,
        new_holes: &mut Vec<HoleSlot>,
    ) -> Result<BufNodeId, BufferError> {
        let Some(id) = self.tree.alloc_node(label.clone(), parent, idx) else {
            return Err(BufferError::CapacityExceeded { nodes: self.tree.node_count() });
        };
        if !self.tree.reserve_children(id, children.len()) {
            return Err(BufferError::CapacityExceeded { nodes: self.tree.node_count() });
        }
        for (i, c) in children.iter().enumerate() {
            let e = match c {
                Fragment::Hole(h) => {
                    let slot = self.tree.new_hole(h.clone());
                    new_holes.push(slot);
                    TreeEntry::Hole(slot)
                }
                Fragment::Node { label, children } => {
                    TreeEntry::Node(self.try_intern(label, children, Some(id), i, new_holes)?)
                }
            };
            self.tree.set_child(id, i, e);
        }
        Ok(id)
    }

    /// Replace the hole at child position `i` of `parent` (slab slot
    /// `slot`) with the interned reply: one in-place child-list splice,
    /// one hole-list relink. Reuses the navigator's scratch buffers, so
    /// the steady-state path allocates only the new node records.
    fn try_splice(
        &mut self,
        parent: BufNodeId,
        i: usize,
        slot: HoleSlot,
        reply: &[Fragment],
    ) -> Result<(), BufferError> {
        let mut entries = std::mem::take(&mut self.entry_scratch);
        let mut new_holes = std::mem::take(&mut self.hole_scratch);
        entries.clear();
        new_holes.clear();
        for (k, f) in reply.iter().enumerate() {
            let e = match f {
                Fragment::Hole(h) => {
                    let s = self.tree.new_hole(h.clone());
                    new_holes.push(s);
                    TreeEntry::Hole(s)
                }
                Fragment::Node { label, children } => {
                    TreeEntry::Node(self.try_intern(label, children, Some(parent), i + k, &mut new_holes)?)
                }
            };
            entries.push(e);
        }
        if !self.tree.splice_children(parent, i, &entries) {
            return Err(BufferError::CapacityExceeded { nodes: self.tree.node_count() });
        }
        // The reply's holes take over exactly the interval the old hole
        // occupied in document order.
        self.tree.relink_holes(Some(slot), &new_holes);
        self.entry_scratch = entries;
        self.hole_scratch = new_holes;
        Ok(())
    }

    /// First materialized node at or after child position `start` of
    /// `parent`, filling holes as they are encountered (Fig. 8's
    /// `chase_first`, generalized).
    fn try_resolve_from(
        &mut self,
        parent: BufNodeId,
        start: usize,
    ) -> Result<Option<BufNodeId>, BufferError> {
        let i = start;
        let mut fuel = self.fill_fuel;
        loop {
            let Some(entry) = self.tree.child(parent, i) else {
                return Ok(None);
            };
            match entry {
                TreeEntry::Node(id) => return Ok(Some(id)),
                TreeEntry::Hole(slot) => {
                    let hole = self.tree.hole_id(slot).clone();
                    let reply = self.try_fill(&hole)?;
                    self.try_splice(parent, i, slot, &reply)?;
                    // Re-examine position i: it now holds the first reply
                    // fragment, the next original sibling (empty reply), or
                    // nothing (list exhausted).
                }
            }
            fuel -= 1;
            if fuel == 0 {
                return Err(BufferError::Stalled {
                    context: format!("resolving children of node #{}", parent.index()),
                });
            }
        }
    }

    fn check_handle(&self, p: BufNodeId) -> Result<(), BufferError> {
        if self.tree.contains(p) {
            Ok(())
        } else {
            Err(BufferError::InvalidHandle { index: p.index() })
        }
    }

    // ---- fallible navigation (the degradation-free API) ----------------

    /// `down`, reporting failure instead of degrading.
    pub fn try_down(&mut self, p: &BufNodeId) -> Result<Option<BufNodeId>, BufferError> {
        self.try_ensure_connected()?;
        self.check_handle(*p)?;
        self.try_resolve_from(*p, 0)
    }

    /// `right`, reporting failure instead of degrading.
    pub fn try_right(&mut self, p: &BufNodeId) -> Result<Option<BufNodeId>, BufferError> {
        self.try_ensure_connected()?;
        self.check_handle(*p)?;
        let Some(parent) = self.tree.parent(*p) else { return Ok(None) };
        let idx = self.tree.idx(*p);
        self.try_resolve_from(parent, idx + 1)
    }

    /// `fetch`, reporting failure instead of degrading.
    pub fn try_fetch(&mut self, p: &BufNodeId) -> Result<Label, BufferError> {
        self.try_ensure_connected()?;
        self.check_handle(*p)?;
        Ok(self.tree.label(*p).clone())
    }

    /// A navigation over this source failed beyond what retries could
    /// absorb (or the breaker is open): parked batch replies and the
    /// source's shared-cache entries can no longer be trusted and must
    /// not be served. Pending bytes were counted as waste at park time
    /// and stay waste, so traffic arithmetic is unchanged.
    fn purge_on_degrade(&mut self) {
        if !self.pending.is_empty() {
            let entries = self.pending.len() as u64;
            let bytes: u64 =
                self.pending.values().flat_map(|r| r.iter()).map(|f| f.wire_bytes() as u64).sum();
            self.pending.clear();
            self.pending_order.clear();
            if self.trace.is_enabled() {
                self.trace.emit(
                    Some(self.uri.as_str()),
                    TraceKind::CacheInvalidate { scope: "pending", entries, bytes },
                );
            }
        }
        if let Some(cache) = self.cache.clone() {
            let (entries, bytes) = cache.invalidate(&self.uri);
            if entries > 0 && self.trace.is_enabled() {
                self.trace.emit(
                    Some(self.uri.as_str()),
                    TraceKind::CacheInvalidate { scope: "shared", entries, bytes },
                );
            }
        }
    }

    /// Collapse a failed navigation to its fallback value, recording the
    /// degradation in health, the degraded epoch/last-error surface, and
    /// the flight recorder — the point where a wrong answer would
    /// otherwise become silent.
    fn degrade<T>(&mut self, op: &'static str, result: Result<T, BufferError>, fallback: T) -> T {
        match result {
            Ok(v) => v,
            Err(e) => {
                self.purge_on_degrade();
                self.health.record_degraded(&e);
                self.degraded_epoch.fetch_add(1, Ordering::Relaxed);
                *lock_unpoisoned(&self.last_degraded) = Some(e.to_string());
                if self.metrics.on() {
                    self.metrics.degradations.inc();
                }
                if self.trace.is_enabled() {
                    self.trace.emit(
                        Some(self.uri.as_str()),
                        TraceKind::Degradation { op, error: e.to_string() },
                    );
                }
                fallback
            }
        }
    }
}

/// Default upper bound on fills per single navigation command — generous
/// (a fill may legitimately reveal just one node) but finite, so a
/// non-conforming wrapper fails loudly instead of hanging. Override per
/// buffer with [`BufferNavigator::with_fill_fuel`].
pub const FILL_FUEL: u32 = 1_000_000;

/// Default cap on parked pending batch replies — generous for real
/// workloads (a batch parks at most `batch_limit - 1` replies per
/// exchange) but finite, so fragments parked for holes the client never
/// navigates to cannot accumulate for the life of the navigator.
/// Override per buffer with [`BufferNavigator::pending_cap`].
pub const DEFAULT_PENDING_CAP: usize = 1024;

impl<W: LxpWrapper> Navigator for BufferNavigator<W> {
    type Handle = BufNodeId;

    fn root(&mut self) -> BufNodeId {
        // Handing out the root handle costs no wrapper traffic (§1); the
        // connection happens at the first real navigation.
        BufNodeId::ROOT
    }

    fn down(&mut self, p: &BufNodeId) -> Option<BufNodeId> {
        let r = self.try_down(p);
        self.degrade("down", r, None)
    }

    fn right(&mut self, p: &BufNodeId) -> Option<BufNodeId> {
        let r = self.try_right(p);
        self.degrade("right", r, None)
    }

    fn fetch(&mut self, p: &BufNodeId) -> Label {
        let r = self.try_fetch(p);
        self.degrade("fetch", r, Label::new(""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultyWrapper};
    use crate::health::HealthStatus;
    use crate::lxp::LxpError;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_nav::explore::materialize;
    use mix_xml::term::parse_term;
    use std::collections::VecDeque;

    fn buffered(term: &str, policy: FillPolicy) -> BufferNavigator<TreeWrapper> {
        let tree = parse_term(term).unwrap();
        BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc")
    }

    #[test]
    fn materializes_identically_under_every_policy() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        for policy in [
            FillPolicy::NodeAtATime,
            FillPolicy::Chunked { n: 2 },
            FillPolicy::WholeSubtree,
            FillPolicy::SizeThreshold { max_nodes: 3 },
        ] {
            let mut nav = buffered(term, policy);
            assert_eq!(materialize(&mut nav).to_string(), term, "{policy:?}");
        }
    }

    #[test]
    fn root_handle_costs_no_traffic() {
        let mut nav = buffered("a[b]", FillPolicy::NodeAtATime);
        let stats = nav.stats();
        let _root = nav.root();
        assert_eq!(stats.snapshot().fills, 0);
        assert_eq!(stats.snapshot().get_roots, 0);
    }

    #[test]
    fn coarser_policies_need_fewer_fills() {
        let term = "r[a[x,y],b[x,y],c[x,y],d[x,y],e[x,y],f[x,y],g[x,y],h[x,y]]";
        let mut fills = Vec::new();
        for policy in [
            FillPolicy::NodeAtATime,
            FillPolicy::Chunked { n: 4 },
            FillPolicy::WholeSubtree,
        ] {
            let mut nav = buffered(term, policy);
            let stats = nav.stats();
            materialize(&mut nav);
            fills.push(stats.snapshot().fills);
        }
        assert!(fills[0] > fills[1], "node-at-a-time {} > chunked {}", fills[0], fills[1]);
        assert!(fills[1] > fills[2], "chunked {} > whole-subtree {}", fills[1], fills[2]);
        assert_eq!(fills[2], 1, "whole subtree arrives in the single root fill");
    }

    #[test]
    fn revisiting_buffered_nodes_is_free() {
        let mut nav = buffered("r[a,b,c]", FillPolicy::WholeSubtree);
        let stats = nav.stats();
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        let after = stats.snapshot();
        // Walk around the already-buffered region.
        let b = nav.right(&a).unwrap();
        let _c = nav.right(&b).unwrap();
        assert_eq!(nav.fetch(&b), "b");
        assert_eq!(stats.snapshot(), after, "no further wrapper traffic");
    }

    #[test]
    fn partial_navigation_fetches_partial_data() {
        // Under node-at-a-time, touching the first child must not pull in
        // the rest of the document.
        let mut nav = buffered("r[a[deep1,deep2],b[x],c[y]]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.fetch(&a), "a");
        let open = nav.open_tree().unwrap().to_string();
        assert!(open.contains('◦'), "open tree still has holes: {open}");
        assert!(!open.contains('y'), "sibling c's content not fetched: {open}");
    }

    #[test]
    fn down_on_leaf_is_none_and_right_at_end_is_none() {
        let mut nav = buffered("r[a,b]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.down(&a), None);
        let b = nav.right(&a).unwrap();
        assert_eq!(nav.right(&b), None);
        assert_eq!(nav.right(&root), None, "root has no siblings");
    }

    /// A scripted wrapper replaying the exact liberal trace of Example 7.
    struct Example7Wrapper {
        script: VecDeque<(HoleId, Vec<Fragment>)>,
    }

    impl LxpWrapper for Example7Wrapper {
        fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
            Ok("0".into())
        }

        fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
            let (expect, reply) = self
                .script
                .pop_front()
                .ok_or_else(|| LxpError::UnknownHole(hole.clone()))?;
            assert_eq!(&expect, hole, "fill order");
            Ok(reply)
        }
    }

    #[test]
    fn example_7_liberal_trace_reconstructs_the_tree() {
        // u: complete tree t = a[b[d,e],c]; the paper's trace:
        //   fill(◦0) = [a[◦1]]
        //   fill(◦1) = [b[◦2], ◦3]
        //   fill(◦3) = [c]
        //   fill(◦2) = [◦4, d[◦5], ◦6]
        //   fill(◦4) = []
        //   fill(◦5) = []
        //   fill(◦6) = [e]
        let h = Fragment::hole;
        let n = Fragment::node;
        let l = Fragment::leaf;
        let script: VecDeque<(HoleId, Vec<Fragment>)> = VecDeque::from(vec![
            ("0".into(), vec![n("a", vec![h("1")])]),
            ("1".into(), vec![n("b", vec![h("2")]), h("3")]),
            ("3".into(), vec![l("c")]),
            ("2".into(), vec![h("4"), n("d", vec![h("5")]), h("6")]),
            ("4".into(), vec![]),
            ("5".into(), vec![]),
            ("6".into(), vec![l("e")]),
        ]);
        let mut nav = BufferNavigator::new(Example7Wrapper { script }, "u");

        // Drive navigation in an order that produces the paper's fills:
        // down to b, right to c, then down into b (d), probe below d, right to e.
        let root = nav.root();
        assert_eq!(nav.fetch(&root), "a"); // fill(0)
        let b = nav.down(&root).unwrap(); // fill(1)
        assert_eq!(nav.fetch(&b), "b");
        let c = nav.right(&b).unwrap(); // fill(3)
        assert_eq!(nav.fetch(&c), "c");
        let d = nav.down(&b).unwrap(); // fill(2) then fill(4)
        assert_eq!(nav.fetch(&d), "d");
        assert_eq!(nav.down(&d), None); // fill(5)
        let e = nav.right(&d).unwrap(); // fill(6)
        assert_eq!(nav.fetch(&e), "e");
        assert_eq!(nav.right(&e), None);
        assert_eq!(nav.right(&c), None);

        // Everything explored: the open tree is now closed and equals t.
        let open = nav.open_tree().unwrap();
        assert_eq!(open.to_tree().unwrap().to_string(), "a[b[d,e],c]");
    }

    #[test]
    fn protocol_violation_degrades_instead_of_panicking() {
        struct Bad;
        impl LxpWrapper for Bad {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Ok(vec![Fragment::hole("1"), Fragment::hole("2")])
            }
        }
        let mut nav = BufferNavigator::new(Bad, "u");
        let health = nav.health();
        let r = nav.root();
        assert_eq!(nav.down(&r), None, "degrades to no-child");
        let s = health.snapshot();
        assert_eq!(s.status, HealthStatus::Degraded);
        let err = s.last_error.expect("fault recorded");
        assert!(err.contains("protocol violation"), "{err}");
        // Violating replies are never buffered.
        assert_eq!(nav.buffered_nodes(), 0);
    }

    #[test]
    fn transient_faults_are_retried_away_invisibly() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        let tree = parse_term(term).unwrap();
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
            FaultConfig::transient(42, 0.3),
        );
        let fault_stats = faulty.stats();
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 32, ..RetryPolicy::default() },
        );
        let health = nav.health();
        assert_eq!(materialize(&mut nav).to_string(), term, "identical result despite faults");
        let s = health.snapshot();
        assert!(fault_stats.snapshot().injected_faults > 0, "schedule actually injected");
        assert_eq!(s.retries, fault_stats.snapshot().injected_faults, "every fault retried");
        assert_eq!(s.status, HealthStatus::Healthy, "all faults absorbed");
        assert!(s.backoff_cost > 0, "recovery cost is accounted");
    }

    #[test]
    fn permanent_outage_degrades_and_opens_the_breaker() {
        let tree = parse_term("r[a,b,c,d,e]").unwrap();
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
            FaultConfig::outage_after(4),
        );
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 2, breaker_threshold: 2, ..RetryPolicy::default() },
        );
        let health = nav.health();
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.fetch(&a), "a", "pre-outage data is served");
        // Walk right until the outage bites: navigation degrades to None
        // instead of panicking.
        let mut p = a;
        let mut reached = vec!["a".to_string()];
        while let Some(next) = nav.right(&p) {
            reached.push(nav.fetch(&next).to_string());
            p = next;
        }
        assert!(reached.len() < 5, "outage truncated the walk: {reached:?}");
        assert_eq!(health.status(), HealthStatus::Degraded, "one give-up so far");
        // A second failing navigation reaches the breaker threshold; from
        // then on the source is quarantined.
        assert_eq!(nav.right(&p), None);
        assert_eq!(health.status(), HealthStatus::Unavailable, "breaker open");
        assert!(health.snapshot().degraded_ops > 0);
        // Buffered data stays navigable while the source is down.
        assert_eq!(nav.fetch(&a), "a");
    }

    #[test]
    fn each_lxp_error_variant_propagates_without_panicking() {
        struct Failing(LxpError);
        impl LxpWrapper for Failing {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Err(self.0.clone())
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Err(self.0.clone())
            }
        }
        for err in [
            LxpError::UnknownHole("h7".into()),
            LxpError::UnknownSource("doc".into()),
            LxpError::ProtocolViolation("scrambled".into()),
            LxpError::SourceError("connection reset".into()),
        ] {
            let mut nav = BufferNavigator::new(Failing(err.clone()), "doc");
            let health = nav.health();
            let root = nav.root();
            assert_eq!(nav.down(&root), None, "{err:?} degrades down");
            assert_eq!(nav.fetch(&root), "", "{err:?} degrades fetch");
            let s = health.snapshot();
            assert!(s.degraded_ops >= 2, "{err:?} recorded");
            let msg = s.last_error.expect("last error kept");
            assert!(msg.contains(&err.to_string()), "{msg} should mention {err}");
        }
    }

    #[test]
    fn failed_connection_is_retried_on_the_next_navigation() {
        struct FlakyRoot {
            failures_left: u32,
            inner: TreeWrapper,
        }
        impl LxpWrapper for FlakyRoot {
            fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    Err(LxpError::SourceError("warming up".into()))
                } else {
                    self.inner.get_root(uri)
                }
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                self.inner.fill(hole)
            }
        }
        let tree = parse_term("r[a]").unwrap();
        let wrapper = FlakyRoot {
            failures_left: 3,
            inner: TreeWrapper::single(&tree, FillPolicy::WholeSubtree),
        };
        // max_attempts 2 < 4 failures: the first navigation degrades, but
        // the streak (1) stays under the breaker threshold, so the second
        // navigation reconnects and succeeds.
        let mut nav = BufferNavigator::with_retry(
            wrapper,
            "doc",
            RetryPolicy { max_attempts: 2, breaker_threshold: 3, ..RetryPolicy::default() },
        );
        let health = nav.health();
        let root = nav.root();
        assert_eq!(nav.down(&root), None, "first try degrades");
        assert_eq!(health.status(), HealthStatus::Degraded);
        let a = nav.down(&root).expect("second try reconnects");
        assert_eq!(nav.fetch(&a), "a");
    }

    #[test]
    fn batched_mode_materializes_identically_with_fewer_requests() {
        let term = "view[t[a,b],t[c,d],t[e,f],t[g,h],t[i,j],t[k,l],t[m,n],t[o,p]]";
        let tree = parse_term(term).unwrap();
        let mut plain =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }), "doc");
        let plain_stats = plain.stats();
        assert_eq!(materialize(&mut plain).to_string(), term);

        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(4);
        let mut batched = BufferNavigator::new(wrapper, "doc").batched(8);
        let batched_stats = batched.stats();
        assert_eq!(materialize(&mut batched).to_string(), term, "identical answer");

        let p = plain_stats.snapshot();
        let b = batched_stats.snapshot();
        assert_eq!(p.requests, p.fills, "unbatched: one wire exchange per fill");
        assert_eq!(b.fills, p.fills, "same per-hole replies consumed");
        assert_eq!(b.nodes_received, p.nodes_received, "same payload");
        assert!(
            b.requests * 3 <= p.requests,
            "batched {} vs unbatched {} exchanges",
            b.requests,
            p.requests
        );
        assert!(b.batched_holes >= b.fills, "continuation items arrived");
        assert!(b.holes_per_request() > 2.0, "{:.1} holes/request", b.holes_per_request());
        assert_eq!(b.wasted_bytes, 0, "a full scan consumes everything it prefetched");
    }

    #[test]
    fn batched_mode_coalesces_known_sibling_holes() {
        // SizeThreshold leaves one hole per big sibling: after the first
        // children fill, the open tree knows several holes at once, and a
        // batched buffer answers them in one exchange.
        let term = "r[big1[a,b,c,d],big2[a,b,c,d],big3[a,b,c,d],big4[a,b,c,d]]";
        let tree = parse_term(term).unwrap();
        let wrapper = TreeWrapper::single(&tree, FillPolicy::SizeThreshold { max_nodes: 2 });
        let mut nav = BufferNavigator::new(wrapper, "doc").batched(8);
        let stats = nav.stats();
        assert!(nav.is_batching());
        assert_eq!(materialize(&mut nav).to_string(), term);
        let s = stats.snapshot();
        assert!(
            s.requests < s.fills,
            "sibling holes shared exchanges: {} requests for {} fills",
            s.requests,
            s.fills
        );
    }

    #[test]
    fn batched_open_tree_evolves_like_unbatched() {
        // Partial navigation: the open trees (holes included) must match
        // step for step, not just the final materialization.
        let term = "r[a[deep1,deep2],b[x],c[y],d[z]]";
        let tree = parse_term(term).unwrap();
        let mut plain =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::NodeAtATime), "doc");
        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime).with_batch_budget(3);
        let mut batched = BufferNavigator::new(wrapper, "doc").batched(4);

        fn drive(nav: &mut BufferNavigator<TreeWrapper>) -> String {
            let root = nav.root();
            let a = nav.down(&root).unwrap();
            let b = nav.right(&a).unwrap();
            let _ = nav.down(&b).unwrap();
            nav.open_tree().unwrap().to_string()
        }
        assert_eq!(drive(&mut plain), drive(&mut batched), "identical open trees");
    }

    #[test]
    fn batched_mode_retries_transient_faults() {
        let term = "view[t[a],t[b],t[c],t[d],t[e],t[f]]";
        let tree = parse_term(term).unwrap();
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(3),
            FaultConfig::transient(2, 0.4),
        );
        let fault_stats = faulty.stats();
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 64, ..RetryPolicy::default() },
        )
        .batched(4);
        let health = nav.health();
        assert_eq!(materialize(&mut nav).to_string(), term, "batched + faulty still exact");
        assert!(fault_stats.snapshot().injected_faults > 0, "schedule actually injected");
        assert_eq!(health.status(), HealthStatus::Healthy, "all faults retried away");
    }

    #[test]
    fn batched_mode_drops_violating_continuation_items_as_waste() {
        // A wrapper that answers the requested hole correctly but pads the
        // exchange with a protocol-violating continuation item.
        struct Padded;
        impl LxpWrapper for Padded {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                match hole.as_str() {
                    "0" => Ok(vec![Fragment::node("r", vec![Fragment::hole("1")])]),
                    "1" => Ok(vec![Fragment::leaf("a")]),
                    _ => Err(LxpError::UnknownHole(hole.clone())),
                }
            }
            fn fill_many(
                &mut self,
                holes: &[HoleId],
            ) -> Result<Vec<crate::lxp::BatchItem>, LxpError> {
                let mut items: Vec<crate::lxp::BatchItem> = holes
                    .iter()
                    .map(|h| Ok(crate::lxp::BatchItem::new(h.clone(), self.fill(h)?)))
                    .collect::<Result<_, LxpError>>()?;
                items.push(crate::lxp::BatchItem::new(
                    "junk",
                    vec![Fragment::hole("x"), Fragment::hole("y")],
                ));
                Ok(items)
            }
        }
        let mut nav = BufferNavigator::new(Padded, "u").batched(4);
        let stats = nav.stats();
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.fetch(&a), "a");
        let s = stats.snapshot();
        assert!(s.wasted_bytes > 0, "violating items counted as waste: {s:?}");
        assert_eq!(nav.pending_replies(), 0, "violating items never parked");
    }

    #[test]
    fn degraded_fetch_is_distinguishable_from_a_real_empty_label() {
        struct Dead;
        impl LxpWrapper for Dead {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Err(LxpError::SourceError("refused".into()))
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Err(LxpError::SourceError("refused".into()))
            }
        }
        let sink = TraceSink::enabled(64);
        let mut nav = BufferNavigator::with_retry(Dead, "doc", RetryPolicy::none())
            .with_trace(sink.clone());
        let root = nav.root();
        assert_eq!(nav.degraded_epoch(), 0);
        assert_eq!(nav.last_degraded(), None);
        let before = nav.degraded_epoch();
        let label = nav.fetch(&root);
        assert_eq!(label, "", "the fallback label itself is ambiguous…");
        assert!(nav.degraded_epoch() > before, "…but the epoch is not");
        let err = nav.last_degraded().expect("cause recorded");
        assert!(err.contains("refused"), "{err}");
        let degradations: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceKind::Degradation { .. }))
            .collect();
        assert_eq!(degradations.len(), 1, "one fetch, one degradation event");
        assert!(matches!(
            &degradations[0].kind,
            TraceKind::Degradation { op: "fetch", .. }
        ));
        assert_eq!(degradations[0].source.as_deref(), Some("doc"));
    }

    #[test]
    fn successful_navigation_leaves_the_degraded_epoch_untouched() {
        // A *legitimately* empty PCDATA child must not look degraded.
        let mut nav = buffered("r[x[]]", FillPolicy::WholeSubtree);
        let root = nav.root();
        let x = nav.down(&root).unwrap();
        assert_eq!(nav.fetch(&x), "x");
        assert_eq!(nav.down(&x), None, "x really has no children");
        assert_eq!(nav.degraded_epoch(), 0, "no degradation happened");
        assert_eq!(nav.last_degraded(), None);
    }

    #[test]
    fn trace_events_reconcile_with_stats_unbatched() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        let tree = parse_term(term).unwrap();
        let sink = TraceSink::enabled(4096);
        let mut nav =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::Chunked { n: 2 }), "doc")
                .with_trace(sink.clone());
        let stats = nav.stats();
        assert_eq!(materialize(&mut nav).to_string(), term);
        let s = stats.snapshot();
        assert_eq!(sink.dropped(), 0);
        let events = sink.events();
        let (mut fills, mut get_roots, mut nodes, mut bytes) = (0u64, 0u64, 0u64, 0u64);
        for e in &events {
            match &e.kind {
                TraceKind::Fill { nodes: n, bytes: b, from_cache: false, .. } => {
                    fills += 1;
                    nodes += n;
                    bytes += b;
                }
                TraceKind::GetRoot { .. } => get_roots += 1,
                _ => {}
            }
        }
        assert_eq!(fills, s.fills);
        assert_eq!(fills, s.requests, "unbatched: every fill is a wire request");
        assert_eq!(get_roots, s.get_roots);
        assert_eq!(nodes, s.nodes_received);
        assert_eq!(bytes, s.bytes_received);
    }

    #[test]
    fn trace_events_reconcile_with_stats_batched() {
        let term = "view[t[a,b],t[c,d],t[e,f],t[g,h],t[i,j],t[k,l],t[m,n],t[o,p]]";
        let tree = parse_term(term).unwrap();
        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(4);
        let sink = TraceSink::enabled(4096);
        let mut nav = BufferNavigator::new(wrapper, "doc").batched(8).with_trace(sink.clone());
        let stats = nav.stats();
        assert_eq!(materialize(&mut nav).to_string(), term);
        let s = stats.snapshot();
        assert_eq!(sink.dropped(), 0);
        let (mut requests, mut batched_holes, mut fills) = (0u64, 0u64, 0u64);
        let (mut wasted, mut credited) = (0u64, 0u64);
        for e in &sink.events() {
            match &e.kind {
                TraceKind::Fill { from_cache: false, .. } => {
                    requests += 1;
                    fills += 1;
                }
                TraceKind::Fill { from_cache: true, waste_credit, .. } => {
                    fills += 1;
                    credited += waste_credit;
                }
                TraceKind::FillMany { items, wasted: w, .. } => {
                    requests += 1;
                    fills += 1;
                    batched_holes += items;
                    wasted += w;
                }
                _ => {}
            }
        }
        assert_eq!(requests, s.requests, "wire exchanges reconcile");
        assert_eq!(batched_holes, s.batched_holes, "per-hole replies reconcile");
        assert_eq!(fills, s.fills, "consumed replies reconcile");
        assert_eq!(wasted - credited, s.wasted_bytes, "waste parked minus consumed reconciles");
    }

    #[test]
    fn fill_fuel_exhaustion_fails_loudly_instead_of_hanging() {
        // Every reply obeys the progress invariant (an empty reply removes
        // a hole), yet a single `down` needs one fill per child hole: with
        // a tiny fuel budget the buffer must answer `Stalled`, not spin.
        struct Evaporating;
        impl LxpWrapper for Evaporating {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                if hole == "0" {
                    Ok(vec![Fragment::node(
                        "r",
                        (0..16).map(|i| Fragment::hole(format!("h{i}"))).collect(),
                    )])
                } else {
                    Ok(vec![]) // hole evaporates: progress, but no node
                }
            }
        }
        let sink = TraceSink::enabled(256);
        let mut nav =
            BufferNavigator::new(Evaporating, "doc").with_fill_fuel(4).with_trace(sink.clone());
        let root = nav.root();
        let err = nav.try_down(&root).unwrap_err();
        assert!(
            matches!(err, BufferError::Stalled { .. }),
            "loud stall instead of a hang: {err}"
        );
        // The degrading API reports it too — visibly.
        let before = nav.degraded_epoch();
        assert_eq!(nav.down(&root), None);
        assert!(nav.degraded_epoch() > before);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(&e.kind, TraceKind::Degradation { op: "down", .. })));
        // A generous budget resolves the same tree fine.
        let mut ok = BufferNavigator::new(Evaporating, "doc");
        let root = ok.root();
        assert_eq!(ok.try_down(&root).unwrap(), None, "all children evaporate");
    }

    #[test]
    fn reset_faults_closes_the_breaker_and_records_it() {
        struct FlakyRoot {
            failures_left: u32,
            inner: TreeWrapper,
        }
        impl LxpWrapper for FlakyRoot {
            fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    Err(LxpError::SourceError("warming up".into()))
                } else {
                    self.inner.get_root(uri)
                }
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                self.inner.fill(hole)
            }
        }
        let tree = parse_term("r[a]").unwrap();
        let wrapper = FlakyRoot {
            failures_left: 2,
            inner: TreeWrapper::single(&tree, FillPolicy::WholeSubtree),
        };
        let sink = TraceSink::enabled(128);
        let mut nav = BufferNavigator::with_retry(
            wrapper,
            "doc",
            RetryPolicy { max_attempts: 1, breaker_threshold: 2, ..RetryPolicy::default() },
        )
        .with_trace(sink.clone());
        let health = nav.health();
        let root = nav.root();
        assert_eq!(nav.down(&root), None);
        assert_eq!(nav.down(&root), None, "second failure trips the breaker");
        assert_eq!(health.status(), HealthStatus::Unavailable);
        assert!(sink.events().iter().any(|e| matches!(e.kind, TraceKind::BreakerOpen { .. })));
        nav.reset_faults();
        assert_eq!(health.status(), HealthStatus::Healthy);
        assert_eq!(nav.last_degraded(), None);
        assert!(sink.events().iter().any(|e| matches!(e.kind, TraceKind::BreakerClose)));
        let a = nav.down(&root).expect("source forgiven and back");
        assert_eq!(nav.fetch(&a), "a");
    }

    #[test]
    fn disabled_tracing_is_observation_free() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]]]";
        let tree = parse_term(term).unwrap();
        let mut nav = BufferNavigator::new(
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
            "doc",
        )
        .with_trace(TraceSink::off());
        let sink = nav.trace_sink();
        assert_eq!(materialize(&mut nav).to_string(), term);
        assert!(sink.is_empty(), "an off sink records nothing");
    }

    #[test]
    fn metrics_registry_reads_the_same_cells_as_stats() {
        let term = "view[t[a,b],t[c,d],t[e,f],t[g,h],t[i,j],t[k,l],t[m,n],t[o,p]]";
        let tree = parse_term(term).unwrap();
        let reg = MetricsRegistry::enabled();
        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(4);
        let mut nav =
            BufferNavigator::new(wrapper, "doc").batched(8).with_metrics(reg.clone());
        let stats = nav.stats();
        assert_eq!(materialize(&mut nav).to_string(), term);
        let s = stats.snapshot();
        let snap = reg.snapshot();
        let l = &[("source", "doc")][..];
        // The bound series ARE the stats cells — equality is structural.
        assert_eq!(snap.value("mix_fills_total", l), Some(s.fills));
        assert_eq!(snap.value("mix_get_roots_total", l), Some(s.get_roots));
        assert_eq!(snap.value("mix_requests_total", l), Some(s.requests));
        assert_eq!(snap.value("mix_batched_holes_total", l), Some(s.batched_holes));
        assert_eq!(snap.value("mix_nodes_received_total", l), Some(s.nodes_received));
        assert_eq!(snap.value("mix_bytes_received_total", l), Some(s.bytes_received));
        assert_eq!(snap.value("mix_wasted_bytes", l), Some(s.wasted_bytes));
        // Gated series: one latency/size observation per wire exchange,
        // cache hits + misses partition the fills.
        let lat = snap.histogram("mix_fill_latency_ns", l).unwrap();
        assert_eq!(lat.count, s.requests, "one latency sample per wire exchange");
        let fb = snap.histogram("mix_fill_bytes", l).unwrap();
        assert_eq!(fb.sum, s.bytes_received, "byte histogram covers all wire bytes");
        let hits = snap.value("mix_batch_cache_hits_total", l).unwrap();
        let misses = snap.value("mix_batch_cache_misses_total", l).unwrap();
        assert_eq!(hits + misses, s.fills, "cache hits and misses partition the fills");
        assert!(hits > 0, "batched scan served some fills from the cache");
    }

    #[test]
    fn disabled_metrics_skip_gated_series_but_keep_traffic_counters() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]]]";
        let tree = parse_term(term).unwrap();
        let reg = MetricsRegistry::off();
        let mut nav =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::NodeAtATime), "doc")
                .with_metrics(reg.clone());
        assert_eq!(materialize(&mut nav).to_string(), term);
        let snap = reg.snapshot();
        let l = &[("source", "doc")][..];
        // The always-on traffic counters are bound regardless…
        assert!(snap.value("mix_fills_total", l).unwrap() > 0);
        // …but the gated series stayed untouched.
        assert_eq!(snap.histogram("mix_fill_latency_ns", l).unwrap().count, 0);
        assert_eq!(snap.value("mix_batch_cache_hits_total", l), Some(0));
        assert_eq!(snap.value("mix_degradations_total", l), Some(0));
    }

    #[test]
    fn degradations_and_retries_show_up_in_metrics() {
        let tree = parse_term("r[a,b,c,d,e]").unwrap();
        let reg = MetricsRegistry::enabled();
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
            FaultConfig::outage_after(4),
        );
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 2, breaker_threshold: 2, ..RetryPolicy::default() },
        )
        .with_metrics(reg.clone());
        let root = nav.root();
        let mut p = nav.down(&root).unwrap();
        while let Some(next) = nav.right(&p) {
            p = next;
        }
        let _ = nav.right(&p); // second failure trips the breaker
        let snap = reg.snapshot();
        let l = &[("source", "doc")][..];
        assert!(snap.value("mix_retries_total", l).unwrap() > 0, "retries recorded");
        assert!(snap.value("mix_degradations_total", l).unwrap() > 0, "degradations recorded");
        assert_eq!(snap.value("mix_breaker_opens_total", l), Some(1), "breaker opening recorded");
    }

    #[test]
    fn handles_remain_valid_across_fills() {
        let mut nav = buffered("r[a,b,c,d]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        let b = nav.right(&a).unwrap();
        let c = nav.right(&b).unwrap();
        let d = nav.right(&c).unwrap();
        // All handles still fetch correctly after the list was spliced
        // repeatedly.
        assert_eq!(nav.fetch(&a), "a");
        assert_eq!(nav.fetch(&b), "b");
        assert_eq!(nav.fetch(&c), "c");
        assert_eq!(nav.fetch(&d), "d");
        // And `right` from the middle still works.
        let c2 = nav.right(&b).unwrap();
        assert_eq!(c2, c);
    }

    #[test]
    fn pending_batch_cache_stays_bounded_in_long_sessions() {
        // A long batched scan parks continuation replies in `pending`.
        // With a small cap the oldest entries are evicted instead of
        // accumulating without bound — and the answer stays exact because
        // an evicted reply is simply refetched over the wire.
        let term = format!(
            "view[{}]",
            (0..40).map(|i| format!("t{i}")).collect::<Vec<_>>().join(",")
        );
        let tree = parse_term(&term).unwrap();
        let reg = MetricsRegistry::enabled();
        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(6);
        let mut nav = BufferNavigator::new(wrapper, "doc")
            .batched(8)
            .pending_cap(2)
            .with_metrics(reg.clone());
        assert_eq!(materialize(&mut nav).to_string(), term, "eviction never corrupts");
        assert!(nav.pending_replies() <= 2, "cap enforced: {}", nav.pending_replies());
        assert!(nav.pending_evictions() > 0, "the cap actually bit");
        let snap = reg.snapshot();
        assert_eq!(
            snap.value("mix_batch_cache_evictions_total", &[("source", "doc")][..]),
            Some(nav.pending_evictions()),
            "evictions surface as a metric"
        );
        // An uncapped run of the same scan parks far more than the cap —
        // the regression the cap exists to prevent.
        let wrapper =
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(6);
        let mut loose = BufferNavigator::new(wrapper, "doc").batched(8);
        let root = loose.root();
        let _ = loose.down(&root);
        assert!(loose.pending_replies() > 2, "an exchange parks more than the cap");
    }

    #[test]
    fn degradation_purges_pending_and_invalidates_the_shared_cache() {
        // Once a source degrades, replies parked before the failure must
        // not survive it — neither in the pending batch cache nor in the
        // shared cross-query cache.
        let term = format!(
            "r[{}]",
            (0..12).map(|i| format!("t{i}")).collect::<Vec<_>>().join(",")
        );
        let tree = parse_term(&term).unwrap();
        let cache = FragmentCache::new();
        let sink = TraceSink::enabled(1024);
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::Chunked { n: 1 }).with_batch_budget(4),
            FaultConfig::outage_after(3),
        );
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 1, breaker_threshold: 2, ..RetryPolicy::default() },
        )
        .batched(4)
        .with_fragment_cache(cache.clone())
        .with_trace(sink.clone());
        let root = nav.root();
        let mut p = nav.down(&root).unwrap();
        assert!(!cache.is_empty(), "pre-outage replies were cached");
        while let Some(next) = nav.right(&p) {
            p = next;
        }
        assert!(nav.degraded_epoch() > 0, "the outage actually degraded the walk");
        assert_eq!(nav.pending_replies(), 0, "no stale pending fragments survive");
        assert_eq!(cache.len(), 0, "the source's shared entries are gone");
        assert!(cache.source_stats("doc").invalidations > 0, "invalidation recorded");
        // A navigator joining on the same cache afterwards starts cold.
        assert!(cache.lookup_root("doc").is_none(), "cached root invalidated too");
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::CacheInvalidate { scope: "shared", .. })));
    }

    #[test]
    fn failed_batch_exchange_still_accounts_its_traffic() {
        // A fill_many whose whole reply is rejected (batch shape violated)
        // used to vanish from the traffic counters: bytes crossed the wire
        // but neither requests nor wasted_bytes recorded them.
        struct Scrambled;
        impl LxpWrapper for Scrambled {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                match hole.as_str() {
                    "0" => Ok(vec![Fragment::node("r", vec![Fragment::hole("1")])]),
                    _ => Err(LxpError::UnknownHole(hole.clone())),
                }
            }
            fn fill_many(
                &mut self,
                _holes: &[HoleId],
            ) -> Result<Vec<crate::lxp::BatchItem>, LxpError> {
                // Wrong hole id in the first item: shape check rejects the
                // exchange, but the payload bytes were already received.
                Ok(vec![crate::lxp::BatchItem::new(
                    "bogus",
                    vec![Fragment::node("x", vec![Fragment::leaf("y")])],
                )])
            }
        }
        let sink = TraceSink::enabled(256);
        let mut nav = BufferNavigator::new(Scrambled, "u").batched(4).with_trace(sink.clone());
        let stats = nav.stats();
        let root = nav.root();
        assert_eq!(nav.down(&root), None, "the violating exchange degrades");
        let s = stats.snapshot();
        assert_eq!(s.requests, 1, "the failed exchange IS a wire request: {s:?}");
        assert!(s.bytes_received > 0, "rejected payload bytes are received bytes");
        assert_eq!(s.wasted_bytes, s.bytes_received, "…and all of them are waste");
        assert_eq!(s.fills, 0, "nothing was consumed");
        let failed: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceKind::FillManyFailed { .. }))
            .collect();
        assert_eq!(failed.len(), 1, "the rejected exchange is traced");
        if let TraceKind::FillManyFailed { bytes, wasted, .. } = &failed[0].kind {
            assert_eq!(bytes, wasted, "the entire exchange is waste");
        }
    }

    #[test]
    fn warm_navigator_answers_from_the_shared_cache_with_zero_wire_traffic() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        let tree = parse_term(term).unwrap();
        let cache = FragmentCache::new();
        let mut cold =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::NodeAtATime), "doc")
                .with_fragment_cache(cache.clone());
        let cold_stats = cold.stats();
        assert_eq!(materialize(&mut cold).to_string(), term);
        assert!(cold_stats.snapshot().requests > 0, "the cold session paid the wire cost");
        assert!(!cache.is_empty() && cache.stats().insertions > 0);

        // Second session: same source uri, same shared cache — but the
        // wire is DEAD. Every fragment (and the root hole) comes from the
        // cache, so the answer is exact with zero wire exchanges.
        struct Dead;
        impl LxpWrapper for Dead {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Err(LxpError::SourceError("unplugged".into()))
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Err(LxpError::SourceError("unplugged".into()))
            }
        }
        let mut warm = BufferNavigator::new(Dead, "doc").with_fragment_cache(cache.clone());
        let warm_stats = warm.stats();
        let health = warm.health();
        assert_eq!(materialize(&mut warm).to_string(), term, "byte-identical warm answer");
        let w = warm_stats.snapshot();
        assert_eq!(w.requests, 0, "zero wire exchanges");
        assert_eq!(w.get_roots, 0, "even the root came from the cache");
        assert_eq!(w.bytes_received, 0);
        assert!(w.fills > 0, "cache hits still count as consumed fills");
        assert_eq!(health.snapshot().degraded_ops, 0, "the dead wire was never touched");
        assert!(cache.source_stats("doc").hits > 0);
    }

    #[test]
    fn zero_budget_cache_admits_nothing_and_changes_nothing() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]]]";
        let tree = parse_term(term).unwrap();
        let cache = FragmentCache::with_budget(0);
        let mut first =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::NodeAtATime), "doc")
                .with_fragment_cache(cache.clone());
        assert_eq!(materialize(&mut first).to_string(), term);
        assert_eq!(cache.len(), 0, "a zero budget admits no fragment entries");
        let mut second =
            BufferNavigator::new(TreeWrapper::single(&tree, FillPolicy::NodeAtATime), "doc")
                .with_fragment_cache(cache.clone());
        let stats = second.stats();
        assert_eq!(materialize(&mut second).to_string(), term, "starved cache, same answer");
        assert!(stats.snapshot().requests > 0, "the second session pays the wire again");
    }

    #[test]
    fn faulted_exchanges_are_never_cached() {
        // Transient faults are retried away; only the successful replies
        // may enter the shared cache. If a faulted attempt ever leaked in,
        // the warm session over a dead wire below would see garbage.
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        let tree = parse_term(term).unwrap();
        let cache = FragmentCache::new();
        let faulty = FaultyWrapper::new(
            TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
            FaultConfig::transient(42, 0.3),
        );
        let fault_stats = faulty.stats();
        let mut nav = BufferNavigator::with_retry(
            faulty,
            "doc",
            RetryPolicy { max_attempts: 32, ..RetryPolicy::default() },
        )
        .with_fragment_cache(cache.clone());
        let stats = nav.stats();
        assert_eq!(materialize(&mut nav).to_string(), term);
        assert!(fault_stats.snapshot().injected_faults > 0, "schedule actually injected");
        let s = stats.snapshot();
        assert_eq!(
            cache.stats().insertions,
            s.requests,
            "exactly one cache insertion per successful exchange — faults cached nothing"
        );
        // And the cached view is complete: a dead-wire warm session
        // reconstructs the identical document.
        struct Dead;
        impl LxpWrapper for Dead {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Err(LxpError::SourceError("unplugged".into()))
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Err(LxpError::SourceError("unplugged".into()))
            }
        }
        let mut warm = BufferNavigator::new(Dead, "doc").with_fragment_cache(cache.clone());
        assert_eq!(materialize(&mut warm).to_string(), term, "cache holds only the truth");
    }
}
