//! The generic buffer component (paper §4, Figures 7–8).
//!
//! A [`BufferNavigator`] exposes the wrapper's view through plain DOM-VXD
//! navigation while maintaining an *open tree* internally. Navigation that
//! stays within explored territory is answered from the buffer; navigation
//! that hits a hole triggers `fill` requests until the requested node
//! materializes (the recursive `d(p)`/`chase_first` algorithm of Figure 8,
//! generalized to the most liberal LXP protocol where replies may contain
//! holes at arbitrary positions).
//!
//! Termination relies on the protocol's progress invariant: every fill
//! either removes a hole (empty reply) or contributes at least one real
//! node, and the open tree only refines towards the finite source tree.

use crate::fragment::Fragment;
use crate::lxp::{check_progress, HoleId, LxpWrapper};
use mix_nav::Navigator;
use mix_xml::Label;
use std::cell::Cell;
use std::rc::Rc;

/// Stable identifier of a buffered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufNodeId(u32);

impl BufNodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Shared counters describing buffer/wrapper traffic.
#[derive(Clone, Default, Debug)]
pub struct BufferStats {
    inner: Rc<StatCells>,
}

#[derive(Default, Debug)]
struct StatCells {
    fills: Cell<u64>,
    get_roots: Cell<u64>,
    nodes_received: Cell<u64>,
    bytes_received: Cell<u64>,
}

/// A point-in-time copy of [`BufferStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStatsSnapshot {
    /// `fill` requests sent to the wrapper.
    pub fills: u64,
    /// `get_root` requests (0 or 1 per source).
    pub get_roots: u64,
    /// Non-hole fragment nodes received.
    pub nodes_received: u64,
    /// Approximate bytes received (see `Fragment::wire_bytes`).
    pub bytes_received: u64,
}

impl BufferStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        BufferStats::default()
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            fills: self.inner.fills.get(),
            get_roots: self.inner.get_roots.get(),
            nodes_received: self.inner.nodes_received.get(),
            bytes_received: self.inner.bytes_received.get(),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.inner.fills.set(0);
        self.inner.get_roots.set(0);
        self.inner.nodes_received.set(0);
        self.inner.bytes_received.set(0);
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Node(BufNodeId),
    Hole(HoleId),
}

#[derive(Debug)]
struct BufNode {
    label: Label,
    children: Vec<Entry>,
    parent: Option<BufNodeId>,
    /// Index within the parent's child list; maintained across splices.
    idx: usize,
}

/// The buffer component: a [`Navigator`] over the open tree fed by an LXP
/// wrapper.
///
/// # Panics
/// Navigation panics when the wrapper violates the LXP contract (unknown
/// holes, progress violations, source errors): in the MIX architecture
/// these are integration bugs between buffer and wrapper, not data-level
/// conditions a client could react to.
pub struct BufferNavigator<W> {
    wrapper: W,
    uri: String,
    nodes: Vec<BufNode>,
    connected: bool,
    stats: BufferStats,
}

impl<W: LxpWrapper> BufferNavigator<W> {
    /// Create a buffer over `wrapper`, exporting the document at `uri`.
    /// No wrapper traffic happens until the first navigation.
    pub fn new(wrapper: W, uri: impl Into<String>) -> Self {
        BufferNavigator {
            wrapper,
            uri: uri.into(),
            nodes: Vec::new(),
            connected: false,
            stats: BufferStats::new(),
        }
    }

    /// A shared handle to this buffer's traffic counters.
    pub fn stats(&self) -> BufferStats {
        self.stats.clone()
    }

    /// Tear down the buffer and recover the wrapper (for reading
    /// wrapper-side statistics after an experiment).
    pub fn into_wrapper(self) -> W {
        self.wrapper
    }

    /// The number of materialized nodes currently buffered.
    pub fn buffered_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Render the current open tree in the paper's `r[a,◦2]` notation
    /// (diagnostics and tests).
    pub fn open_tree(&self) -> Option<Fragment> {
        if !self.connected {
            return None;
        }
        Some(self.fragment_of(BufNodeId(0)))
    }

    fn fragment_of(&self, id: BufNodeId) -> Fragment {
        let n = &self.nodes[id.index()];
        Fragment::Node {
            label: n.label.clone(),
            children: n
                .children
                .iter()
                .map(|e| match e {
                    Entry::Node(c) => self.fragment_of(*c),
                    Entry::Hole(h) => Fragment::Hole(h.clone()),
                })
                .collect(),
        }
    }

    fn do_fill(&mut self, hole: &HoleId) -> Vec<Fragment> {
        let reply = self
            .wrapper
            .fill(hole)
            .unwrap_or_else(|e| panic!("LXP fill({hole}) failed: {e}"));
        check_progress(&reply).unwrap_or_else(|e| panic!("wrapper broke LXP progress: {e}"));
        let cells = &self.stats.inner;
        cells.fills.set(cells.fills.get() + 1);
        for f in &reply {
            cells.nodes_received.set(cells.nodes_received.get() + f.node_count() as u64);
            cells.bytes_received.set(cells.bytes_received.get() + f.wire_bytes() as u64);
        }
        reply
    }

    fn ensure_connected(&mut self) {
        if self.connected {
            return;
        }
        let cells = &self.stats.inner;
        cells.get_roots.set(cells.get_roots.get() + 1);
        let uri = self.uri.clone();
        let mut hole = self
            .wrapper
            .get_root(&uri)
            .unwrap_or_else(|e| panic!("LXP get_root({uri}) failed: {e}"));
        // Chase fills until the single root element appears. Holes around
        // it necessarily represent zero elements (a document has one root)
        // and are dropped.
        let mut fuel = FILL_FUEL;
        let root_frag = loop {
            let reply = self.do_fill(&hole);
            if let Some(node) = reply.iter().find(|f| !f.is_hole()) {
                break node.clone();
            }
            match reply.into_iter().next() {
                Some(Fragment::Hole(h)) => hole = h,
                _ => panic!("LXP root fill for `{uri}` reached a dead end without a root"),
            }
            fuel -= 1;
            assert!(fuel > 0, "wrapper failed to produce a root element for `{uri}`");
        };
        let root = self.intern(&root_frag, None, 0);
        debug_assert_eq!(root, BufNodeId(0));
        self.connected = true;
    }

    /// Materialize a fragment into the arena; returns the node id.
    fn intern(&mut self, frag: &Fragment, parent: Option<BufNodeId>, idx: usize) -> BufNodeId {
        let Fragment::Node { label, children } = frag else {
            panic!("intern called on a hole");
        };
        let id = BufNodeId(u32::try_from(self.nodes.len()).expect("buffer too large"));
        self.nodes.push(BufNode { label: label.clone(), children: Vec::new(), parent, idx });
        let entries: Vec<Entry> = children
            .iter()
            .enumerate()
            .map(|(i, c)| match c {
                Fragment::Hole(h) => Entry::Hole(h.clone()),
                node => Entry::Node(self.intern(node, Some(id), i)),
            })
            .collect();
        self.nodes[id.index()].children = entries;
        id
    }

    /// Replace the hole at `parent.children[i]` with the interned reply,
    /// shifting sibling indices.
    fn splice(&mut self, parent: BufNodeId, i: usize, reply: Vec<Fragment>) {
        let interned: Vec<Entry> = reply
            .iter()
            .enumerate()
            .map(|(k, f)| match f {
                Fragment::Hole(h) => Entry::Hole(h.clone()),
                node => Entry::Node(self.intern(node, Some(parent), i + k)),
            })
            .collect();
        let grew = interned.len();
        let kids = &mut self.nodes[parent.index()].children;
        kids.splice(i..=i, interned);
        // Fix cached indices of shifted right siblings.
        let kids_snapshot: Vec<Entry> = self.nodes[parent.index()].children[i + grew..].to_vec();
        for (off, e) in kids_snapshot.iter().enumerate() {
            if let Entry::Node(id) = e {
                self.nodes[id.index()].idx = i + grew + off;
            }
        }
    }

    /// First materialized node at or after child position `start` of
    /// `parent`, filling holes as they are encountered (Fig. 8's
    /// `chase_first`, generalized).
    fn resolve_from(&mut self, parent: BufNodeId, start: usize) -> Option<BufNodeId> {
        let i = start;
        let mut fuel = FILL_FUEL;
        loop {
            let entry = self.nodes[parent.index()].children.get(i).cloned()?;
            match entry {
                Entry::Node(id) => return Some(id),
                Entry::Hole(h) => {
                    let reply = self.do_fill(&h);
                    self.splice(parent, i, reply);
                    // Re-examine position i: it now holds the first reply
                    // fragment, the next original sibling (empty reply), or
                    // nothing (list exhausted).
                }
            }
            fuel -= 1;
            assert!(fuel > 0, "wrapper made no progress filling children of a node");
        }
    }
}

/// Upper bound on fills per single navigation command — generous (a fill
/// may legitimately reveal just one node) but finite, so a non-conforming
/// wrapper fails loudly instead of hanging.
const FILL_FUEL: u32 = 1_000_000;

impl<W: LxpWrapper> Navigator for BufferNavigator<W> {
    type Handle = BufNodeId;

    fn root(&mut self) -> BufNodeId {
        // Handing out the root handle costs no wrapper traffic (§1); the
        // connection happens at the first real navigation.
        BufNodeId(0)
    }

    fn down(&mut self, p: &BufNodeId) -> Option<BufNodeId> {
        self.ensure_connected();
        self.resolve_from(*p, 0)
    }

    fn right(&mut self, p: &BufNodeId) -> Option<BufNodeId> {
        self.ensure_connected();
        let node = &self.nodes[p.index()];
        let parent = node.parent?;
        let idx = node.idx;
        self.resolve_from(parent, idx + 1)
    }

    fn fetch(&mut self, p: &BufNodeId) -> Label {
        self.ensure_connected();
        self.nodes[p.index()].label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lxp::LxpError;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_nav::explore::materialize;
    use mix_xml::term::parse_term;
    use std::collections::VecDeque;

    fn buffered(term: &str, policy: FillPolicy) -> BufferNavigator<TreeWrapper> {
        let tree = parse_term(term).unwrap();
        BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc")
    }

    #[test]
    fn materializes_identically_under_every_policy() {
        let term = "view[tuple[a[1],b[2]],tuple[a[3],b[4]],tuple[a[5],b[6]]]";
        for policy in [
            FillPolicy::NodeAtATime,
            FillPolicy::Chunked { n: 2 },
            FillPolicy::WholeSubtree,
            FillPolicy::SizeThreshold { max_nodes: 3 },
        ] {
            let mut nav = buffered(term, policy);
            assert_eq!(materialize(&mut nav).to_string(), term, "{policy:?}");
        }
    }

    #[test]
    fn root_handle_costs_no_traffic() {
        let mut nav = buffered("a[b]", FillPolicy::NodeAtATime);
        let stats = nav.stats();
        let _root = nav.root();
        assert_eq!(stats.snapshot().fills, 0);
        assert_eq!(stats.snapshot().get_roots, 0);
    }

    #[test]
    fn coarser_policies_need_fewer_fills() {
        let term = "r[a[x,y],b[x,y],c[x,y],d[x,y],e[x,y],f[x,y],g[x,y],h[x,y]]";
        let mut fills = Vec::new();
        for policy in [
            FillPolicy::NodeAtATime,
            FillPolicy::Chunked { n: 4 },
            FillPolicy::WholeSubtree,
        ] {
            let mut nav = buffered(term, policy);
            let stats = nav.stats();
            materialize(&mut nav);
            fills.push(stats.snapshot().fills);
        }
        assert!(fills[0] > fills[1], "node-at-a-time {} > chunked {}", fills[0], fills[1]);
        assert!(fills[1] > fills[2], "chunked {} > whole-subtree {}", fills[1], fills[2]);
        assert_eq!(fills[2], 1, "whole subtree arrives in the single root fill");
    }

    #[test]
    fn revisiting_buffered_nodes_is_free() {
        let mut nav = buffered("r[a,b,c]", FillPolicy::WholeSubtree);
        let stats = nav.stats();
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        let after = stats.snapshot();
        // Walk around the already-buffered region.
        let b = nav.right(&a).unwrap();
        let _c = nav.right(&b).unwrap();
        assert_eq!(nav.fetch(&b), "b");
        assert_eq!(stats.snapshot(), after, "no further wrapper traffic");
    }

    #[test]
    fn partial_navigation_fetches_partial_data() {
        // Under node-at-a-time, touching the first child must not pull in
        // the rest of the document.
        let mut nav = buffered("r[a[deep1,deep2],b[x],c[y]]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.fetch(&a), "a");
        let open = nav.open_tree().unwrap().to_string();
        assert!(open.contains('◦'), "open tree still has holes: {open}");
        assert!(!open.contains('y'), "sibling c's content not fetched: {open}");
    }

    #[test]
    fn down_on_leaf_is_none_and_right_at_end_is_none() {
        let mut nav = buffered("r[a,b]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        assert_eq!(nav.down(&a), None);
        let b = nav.right(&a).unwrap();
        assert_eq!(nav.right(&b), None);
        assert_eq!(nav.right(&root), None, "root has no siblings");
    }

    /// A scripted wrapper replaying the exact liberal trace of Example 7.
    struct Example7Wrapper {
        script: VecDeque<(HoleId, Vec<Fragment>)>,
    }

    impl LxpWrapper for Example7Wrapper {
        fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
            Ok("0".into())
        }

        fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
            let (expect, reply) = self
                .script
                .pop_front()
                .ok_or_else(|| LxpError::UnknownHole(hole.clone()))?;
            assert_eq!(&expect, hole, "fill order");
            Ok(reply)
        }
    }

    #[test]
    fn example_7_liberal_trace_reconstructs_the_tree() {
        // u: complete tree t = a[b[d,e],c]; the paper's trace:
        //   fill(◦0) = [a[◦1]]
        //   fill(◦1) = [b[◦2], ◦3]
        //   fill(◦3) = [c]
        //   fill(◦2) = [◦4, d[◦5], ◦6]
        //   fill(◦4) = []
        //   fill(◦5) = []
        //   fill(◦6) = [e]
        let h = Fragment::hole;
        let n = Fragment::node;
        let l = Fragment::leaf;
        let script: VecDeque<(HoleId, Vec<Fragment>)> = VecDeque::from(vec![
            ("0".into(), vec![n("a", vec![h("1")])]),
            ("1".into(), vec![n("b", vec![h("2")]), h("3")]),
            ("3".into(), vec![l("c")]),
            ("2".into(), vec![h("4"), n("d", vec![h("5")]), h("6")]),
            ("4".into(), vec![]),
            ("5".into(), vec![]),
            ("6".into(), vec![l("e")]),
        ]);
        let mut nav = BufferNavigator::new(Example7Wrapper { script }, "u");

        // Drive navigation in an order that produces the paper's fills:
        // down to b, right to c, then down into b (d), probe below d, right to e.
        let root = nav.root();
        assert_eq!(nav.fetch(&root), "a"); // fill(0)
        let b = nav.down(&root).unwrap(); // fill(1)
        assert_eq!(nav.fetch(&b), "b");
        let c = nav.right(&b).unwrap(); // fill(3)
        assert_eq!(nav.fetch(&c), "c");
        let d = nav.down(&b).unwrap(); // fill(2) then fill(4)
        assert_eq!(nav.fetch(&d), "d");
        assert_eq!(nav.down(&d), None); // fill(5)
        let e = nav.right(&d).unwrap(); // fill(6)
        assert_eq!(nav.fetch(&e), "e");
        assert_eq!(nav.right(&e), None);
        assert_eq!(nav.right(&c), None);

        // Everything explored: the open tree is now closed and equals t.
        let open = nav.open_tree().unwrap();
        assert_eq!(open.to_tree().unwrap().to_string(), "a[b[d,e],c]");
    }

    #[test]
    #[should_panic(expected = "progress")]
    fn protocol_violation_panics() {
        struct Bad;
        impl LxpWrapper for Bad {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, _hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                Ok(vec![Fragment::hole("1"), Fragment::hole("2")])
            }
        }
        let mut nav = BufferNavigator::new(Bad, "u");
        let r = nav.root();
        let _ = nav.down(&r);
    }

    #[test]
    fn handles_remain_valid_across_fills() {
        let mut nav = buffered("r[a,b,c,d]", FillPolicy::NodeAtATime);
        let root = nav.root();
        let a = nav.down(&root).unwrap();
        let b = nav.right(&a).unwrap();
        let c = nav.right(&b).unwrap();
        let d = nav.right(&c).unwrap();
        // All handles still fetch correctly after the list was spliced
        // repeatedly.
        assert_eq!(nav.fetch(&a), "a");
        assert_eq!(nav.fetch(&b), "b");
        assert_eq!(nav.fetch(&c), "c");
        assert_eq!(nav.fetch(&d), "d");
        // And `right` from the middle still works.
        let c2 = nav.right(&b).unwrap();
        assert_eq!(c2, c);
    }
}
