//! Adaptive chunk sizing for LXP wrappers (AIMD).
//!
//! Fixed `n`-tuples-at-a-time granularity is wrong in both directions: too
//! small for a sequential scan (per-request overhead dominates) and too
//! large for random probing (most of each chunk is wasted bytes). An
//! [`AimdChunk`] controller adapts the chunk to the observed access
//! pattern the way TCP adapts its congestion window — additive increase on
//! consecutive sequential fills, multiplicative decrease on random access
//! or fragment waste — so a wrapper converges on coarse chunks for scans
//! and fine chunks for point lookups without client hints.

/// AIMD chunk-size controller state.
///
/// Wrappers own one controller per export (or per table) and consult
/// [`AimdChunk::chunk`] when sizing the next fill reply, feeding back
/// [`on_sequential`], [`on_random`], and [`on_waste`] signals as they
/// observe the client's request stream.
///
/// [`on_sequential`]: AimdChunk::on_sequential
/// [`on_random`]: AimdChunk::on_random
/// [`on_waste`]: AimdChunk::on_waste
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdChunk {
    chunk: usize,
    min: usize,
    max: usize,
    /// Additive step applied per sequential fill.
    increase: usize,
    /// Consecutive sequential fills observed since the last reset.
    streak: u32,
    /// Random-access signals accumulated since the last shrink (see
    /// `hysteresis`).
    pressure: u32,
    /// How many random-access signals it takes to trigger one
    /// multiplicative shrink. On short scans a single stray probe used
    /// to halve the chunk, then the next probe halved it again —
    /// thrashing between sizes and inflating request counts versus a
    /// fixed chunk. Pressure accumulates across sequential fills and
    /// resets only when a shrink fires. Measured waste
    /// ([`AimdChunk::on_waste`]) bypasses the band: data provably
    /// shipped for nothing shrinks immediately.
    hysteresis: u32,
}

/// Default random-signal hysteresis: two consecutive random probes (with
/// no sequential fill absorbing the pressure in between) per shrink.
pub const DEFAULT_HYSTERESIS: u32 = 2;

impl AimdChunk {
    /// A controller starting at `initial` items per fill, bounded to
    /// `[min, max]` and growing by `increase` per sequential fill.
    pub fn new(initial: usize, min: usize, max: usize, increase: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        AimdChunk {
            chunk: initial.clamp(min, max),
            min,
            max,
            increase: increase.max(1),
            streak: 0,
            pressure: 0,
            hysteresis: DEFAULT_HYSTERESIS,
        }
    }

    /// Override the hysteresis band: shrink only after `h` accumulated
    /// random-access signals (floored at 1 = shrink on every signal,
    /// the pre-hysteresis behavior).
    pub fn with_hysteresis(mut self, h: u32) -> Self {
        self.hysteresis = h.max(1);
        self
    }

    /// A controller with library defaults: start at `initial`, floor 1,
    /// ceiling `initial * 64` (at least 64), grow by `initial` per
    /// sequential fill.
    pub fn with_initial(initial: usize) -> Self {
        let initial = initial.max(1);
        AimdChunk::new(initial, 1, (initial * 64).max(64), initial)
    }

    /// The chunk size the next fill should use.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Consecutive sequential fills observed since the last shrink.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// The client continued exactly where the previous fill left off:
    /// additive increase.
    pub fn on_sequential(&mut self) {
        self.streak = self.streak.saturating_add(1);
        self.chunk = self.chunk.saturating_add(self.increase).min(self.max);
    }

    /// The client jumped to an unrelated position. The streak resets,
    /// but the multiplicative decrease fires only once the accumulated
    /// pressure crosses the hysteresis band — one stray probe in a scan
    /// no longer thrashes the chunk size.
    pub fn on_random(&mut self) {
        self.streak = 0;
        self.pressure += 1;
        if self.pressure >= self.hysteresis {
            self.shrink();
        }
    }

    /// Data shipped speculatively went unused: a *measured* loss, so the
    /// decrease fires immediately, bypassing the hysteresis band.
    pub fn on_waste(&mut self) {
        self.streak = 0;
        self.shrink();
    }

    fn shrink(&mut self) {
        self.pressure = 0;
        self.chunk = (self.chunk / 2).max(self.min);
    }
}

impl Default for AimdChunk {
    fn default() -> Self {
        AimdChunk::with_initial(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_additively_on_sequential_fills() {
        let mut c = AimdChunk::new(10, 1, 1000, 10);
        assert_eq!(c.chunk(), 10);
        for _ in 0..5 {
            c.on_sequential();
        }
        assert_eq!(c.chunk(), 60);
        assert_eq!(c.streak(), 5);
    }

    #[test]
    fn shrinks_multiplicatively_on_random_access() {
        // Hysteresis 1 = the classic shrink-per-signal behavior.
        let mut c = AimdChunk::new(64, 2, 1000, 8).with_hysteresis(1);
        c.on_random();
        assert_eq!(c.chunk(), 32);
        c.on_random();
        c.on_random();
        c.on_random();
        c.on_random();
        assert_eq!(c.chunk(), 2, "clamped to the floor");
        assert_eq!(c.streak(), 0);
    }

    #[test]
    fn hysteresis_absorbs_an_isolated_random_probe() {
        // Default band (2): one stray probe must not halve the chunk —
        // the oscillation bug on short scans — but sustained pressure
        // still shrinks it.
        let mut c = AimdChunk::new(64, 1, 1000, 8);
        c.on_random();
        assert_eq!(c.chunk(), 64, "one probe is absorbed");
        assert_eq!(c.streak(), 0, "…but the streak still resets");
        c.on_random();
        assert_eq!(c.chunk(), 32, "the second probe crosses the band");
        // The band re-arms after each shrink.
        c.on_random();
        assert_eq!(c.chunk(), 32);
        c.on_random();
        assert_eq!(c.chunk(), 16);
    }

    #[test]
    fn waste_bypasses_the_hysteresis_band() {
        // Waste is measured, not inferred: it shrinks immediately even
        // with a wide band, and resets the accumulated pressure.
        let mut c = AimdChunk::new(64, 1, 1000, 8).with_hysteresis(10);
        c.on_waste();
        assert_eq!(c.chunk(), 32, "measured loss shrinks at once");
        c.on_random();
        assert_eq!(c.chunk(), 32, "pressure was reset by the shrink");
    }

    #[test]
    fn waste_is_a_decrease_signal() {
        let mut c = AimdChunk::new(40, 1, 1000, 10);
        c.on_sequential();
        c.on_waste();
        assert_eq!(c.chunk(), 25);
        assert_eq!(c.streak(), 0);
    }

    #[test]
    fn respects_ceiling() {
        let mut c = AimdChunk::new(90, 1, 100, 50);
        c.on_sequential();
        assert_eq!(c.chunk(), 100);
        c.on_sequential();
        assert_eq!(c.chunk(), 100);
    }

    #[test]
    fn constructor_clamps_degenerate_inputs() {
        let c = AimdChunk::new(0, 0, 0, 0);
        assert_eq!(c.chunk(), 1);
        let c = AimdChunk::with_initial(0);
        assert_eq!(c.chunk(), 1);
    }

    #[test]
    fn streak_saturates_instead_of_overflowing() {
        // A scan long enough to wrap u32 must not panic in debug builds:
        // the streak pins at u32::MAX while the chunk stays at its cap.
        let mut c = AimdChunk::new(10, 1, 100, 10);
        c.streak = u32::MAX - 1;
        c.on_sequential();
        assert_eq!(c.streak(), u32::MAX);
        c.on_sequential();
        assert_eq!(c.streak(), u32::MAX, "saturated, no overflow");
        assert_eq!(c.chunk(), 30, "additive increase keeps working");
        c.on_random();
        assert_eq!(c.streak(), 0, "reset still works after saturation");
    }

    #[test]
    fn sawtooth_converges_on_mixed_workloads() {
        // Alternating scan bursts and random probes keep the chunk
        // bounded: AIMD's sawtooth, not runaway growth.
        let mut c = AimdChunk::new(10, 1, 10_000, 10);
        let mut peak = 0;
        for _ in 0..50 {
            for _ in 0..4 {
                c.on_sequential();
            }
            peak = peak.max(c.chunk());
            c.on_random();
        }
        assert!(peak <= 200, "sawtooth stays bounded, peaked at {peak}");
        assert!(c.chunk() >= 1);
    }
}
