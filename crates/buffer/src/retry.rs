//! Retry with exponential backoff and a circuit breaker for the LXP path.
//!
//! The buffer is the single choke point between a lazy mediator and a
//! flaky source, so it is the right place to absorb transient faults: a
//! failed `fill` retried here is invisible to every operator above. The
//! backoff between attempts is *simulated* — a deterministic cost in the
//! same currency as the web wrapper's `simulated_cost` (no real sleeping),
//! so experiments stay reproducible and fast while still exposing what
//! fault-recovery would cost on the wire.
//!
//! A per-source circuit breaker turns a persistently failing source into
//! fast, traffic-free failures: after `breaker_threshold` consecutive
//! give-ups the buffer stops calling the wrapper entirely, and navigation
//! degrades immediately instead of timing out again and again.

use crate::lxp::LxpError;
use crate::metrics::RetryMetrics;
use crate::trace::{TraceKind, TraceSink};

/// Retry/backoff/breaker knobs for one buffer–wrapper conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per LXP request (1 = no retries).
    pub max_attempts: u32,
    /// Simulated cost of the first backoff; doubles each further attempt.
    pub base_backoff_cost: u64,
    /// Ceiling on a single backoff's simulated cost.
    pub max_backoff_cost: u64,
    /// Consecutive exhausted requests before the circuit opens (0 =
    /// breaker disabled).
    pub breaker_threshold: u32,
    /// Rejected calls while open before one *half-open probe* is let
    /// through to the wrapper; a successful probe closes the circuit
    /// again without any manual reset (0 = the breaker only ever closes
    /// via [`RetryState::reset`]).
    pub half_open_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_cost: 16,
            max_backoff_cost: 1 << 10,
            breaker_threshold: 3,
            half_open_after: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never trips the breaker —
    /// pre-fault-tolerance behaviour, minus the panics.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_cost: 0,
            max_backoff_cost: 0,
            breaker_threshold: 0,
            half_open_after: 0,
        }
    }

    /// Simulated backoff cost charged after failed attempt number
    /// `attempt` (1-based): `base · 2^(attempt-1)`, capped.
    pub fn backoff_cost(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(63);
        self.base_backoff_cost
            .saturating_mul(1u64 << doublings)
            .min(self.max_backoff_cost)
    }
}

/// Mutable breaker state for one conversation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryState {
    consecutive_failures: u32,
    open: bool,
    /// Calls rejected since the circuit opened (or since the last
    /// half-open probe) — the half-open pacing counter.
    rejected_while_open: u32,
}

/// Outcome of [`RetryState::run`].
pub type RetryResult<T> = Result<T, RetryError>;

/// Why a retried request ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryError {
    /// The circuit is open; the wrapper was not called at all.
    CircuitOpen,
    /// A permanent (non-transient) error; retrying would not help.
    Permanent(LxpError),
    /// Every attempt failed with a transient error.
    Exhausted {
        /// Attempts made (= the policy's `max_attempts`).
        attempts: u32,
        /// The error of the final attempt.
        last: LxpError,
    },
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::CircuitOpen => write!(f, "circuit breaker open: source quarantined"),
            RetryError::Permanent(e) => write!(f, "permanent error: {e}"),
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for RetryError {}

impl RetryState {
    /// Fresh state with the breaker closed.
    pub fn new() -> Self {
        RetryState::default()
    }

    /// Is the breaker currently open?
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Run `op` under `policy`, reporting retries/backoff to `health`.
    ///
    /// Transient errors are retried up to `policy.max_attempts` total
    /// attempts, charging simulated backoff cost between attempts. A
    /// success closes the failure streak; an exhausted or permanent
    /// failure lengthens it, and when the streak reaches
    /// `breaker_threshold` the circuit opens: further calls fail
    /// immediately with [`RetryError::CircuitOpen`] without touching the
    /// wrapper.
    pub fn run<T>(
        &mut self,
        policy: &RetryPolicy,
        health: &crate::health::SourceHealth,
        op: impl FnMut() -> Result<T, LxpError>,
    ) -> RetryResult<T> {
        self.run_traced(policy, health, &TraceSink::off(), None, "", op)
    }

    /// [`RetryState::run`], additionally recording each retry and any
    /// breaker opening as flight-recorder events attributed to `source`
    /// and `request`. Event construction (including `request`'s clone) is
    /// guarded behind the sink's enabled flag, so an off sink costs one
    /// branch per retry.
    pub fn run_traced<T>(
        &mut self,
        policy: &RetryPolicy,
        health: &crate::health::SourceHealth,
        trace: &TraceSink,
        source: Option<&str>,
        request: &str,
        op: impl FnMut() -> Result<T, LxpError>,
    ) -> RetryResult<T> {
        self.run_observed(policy, health, trace, None, source, request, op)
    }

    /// [`RetryState::run_traced`], additionally bumping the
    /// retry/breaker-open counters of a live-metrics registry. Metric
    /// recording is guarded inside [`RetryMetrics`] behind the registry's
    /// enabled flag, so a disabled registry costs one relaxed load per
    /// retry.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed<T>(
        &mut self,
        policy: &RetryPolicy,
        health: &crate::health::SourceHealth,
        trace: &TraceSink,
        metrics: Option<&RetryMetrics>,
        source: Option<&str>,
        request: &str,
        mut op: impl FnMut() -> Result<T, LxpError>,
    ) -> RetryResult<T> {
        if self.open {
            self.rejected_while_open += 1;
            if policy.half_open_after == 0 || self.rejected_while_open < policy.half_open_after {
                return Err(RetryError::CircuitOpen);
            }
            // Half-open: let exactly one probe through. Success closes
            // the circuit (and flips the health handle back, so /healthz
            // recovers without a restart); failure re-arms the pacing
            // counter and keeps the circuit open.
            self.rejected_while_open = 0;
            match op() {
                Ok(v) => {
                    self.open = false;
                    self.consecutive_failures = 0;
                    health.set_breaker(false);
                    if let Some(m) = metrics {
                        m.record_breaker_close();
                    }
                    if trace.is_enabled() {
                        trace.emit(source, TraceKind::BreakerClose);
                    }
                    return Ok(v);
                }
                Err(_) => return Err(RetryError::CircuitOpen),
            }
        }
        let attempts = policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => {
                    self.consecutive_failures = 0;
                    return Ok(v);
                }
                Err(e) if e.is_transient() && attempt < attempts => {
                    health.record_retry(&e, policy.backoff_cost(attempt));
                    if let Some(m) = metrics {
                        m.record_retry();
                    }
                    if trace.is_enabled() {
                        trace.emit(
                            source,
                            TraceKind::Retry {
                                request: request.to_string(),
                                attempt,
                                backoff_cost: policy.backoff_cost(attempt),
                                error: e.to_string(),
                            },
                        );
                    }
                }
                Err(e) if e.is_transient() => {
                    self.note_failure(policy, health, trace, metrics, source, request);
                    return Err(RetryError::Exhausted { attempts, last: e });
                }
                Err(e) => {
                    self.note_failure(policy, health, trace, metrics, source, request);
                    return Err(RetryError::Permanent(e));
                }
            }
        }
        unreachable!("loop returns on success or final attempt")
    }

    /// Close the breaker and forget the failure streak (the health handle
    /// is reset separately by the owner).
    pub fn reset(&mut self) {
        self.consecutive_failures = 0;
        self.open = false;
        self.rejected_while_open = 0;
    }

    fn note_failure(
        &mut self,
        policy: &RetryPolicy,
        health: &crate::health::SourceHealth,
        trace: &TraceSink,
        metrics: Option<&RetryMetrics>,
        source: Option<&str>,
        request: &str,
    ) {
        self.consecutive_failures += 1;
        if policy.breaker_threshold > 0 && self.consecutive_failures >= policy.breaker_threshold {
            self.open = true;
            health.set_breaker(true);
            if let Some(m) = metrics {
                m.record_breaker_open();
            }
            if trace.is_enabled() {
                trace.emit(source, TraceKind::BreakerOpen { request: request.to_string() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthStatus, SourceHealth};

    fn flaky(failures_before_success: u32) -> impl FnMut() -> Result<u32, LxpError> {
        let mut remaining = failures_before_success;
        move || {
            if remaining > 0 {
                remaining -= 1;
                Err(LxpError::SourceError("connection reset".into()))
            } else {
                Ok(42)
            }
        }
    }

    #[test]
    fn transient_errors_are_retried_away() {
        let policy = RetryPolicy::default();
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let got = state.run(&policy, &health, flaky(2)).unwrap();
        assert_eq!(got, 42);
        let s = health.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.status, HealthStatus::Healthy);
        // Backoff doubled: 16 then 32.
        assert_eq!(s.backoff_cost, 16 + 32);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let policy = RetryPolicy::default();
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let mut calls = 0;
        let err = state
            .run(&policy, &health, || -> Result<(), _> {
                calls += 1;
                Err(LxpError::UnknownHole("h".into()))
            })
            .unwrap_err();
        assert!(matches!(err, RetryError::Permanent(LxpError::UnknownHole(_))));
        assert_eq!(calls, 1, "no retry of an integration bug");
    }

    #[test]
    fn exhaustion_reports_attempts_and_opens_the_breaker() {
        let policy = RetryPolicy { max_attempts: 3, breaker_threshold: 2, ..RetryPolicy::default() };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let always_down = || Err::<(), _>(LxpError::SourceError("down".into()));

        let err = state.run(&policy, &health, always_down).unwrap_err();
        assert!(matches!(err, RetryError::Exhausted { attempts: 3, .. }));
        assert!(!state.is_open(), "one streak is below the threshold");

        let _ = state.run(&policy, &health, always_down).unwrap_err();
        assert!(state.is_open());
        assert_eq!(health.status(), HealthStatus::Unavailable);

        // Open circuit: the wrapper is no longer called.
        let mut called = false;
        let err = state
            .run(&policy, &health, || -> Result<(), _> {
                called = true;
                Err(LxpError::SourceError("down".into()))
            })
            .unwrap_err();
        assert_eq!(err, RetryError::CircuitOpen);
        assert!(!called);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let policy = RetryPolicy { max_attempts: 1, breaker_threshold: 3, ..RetryPolicy::default() };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        for _ in 0..2 {
            let _ = state
                .run(&policy, &health, || Err::<(), _>(LxpError::SourceError("x".into())))
                .unwrap_err();
        }
        state.run(&policy, &health, || Ok::<_, LxpError>(1)).unwrap();
        for _ in 0..2 {
            let _ = state
                .run(&policy, &health, || Err::<(), _>(LxpError::SourceError("x".into())))
                .unwrap_err();
        }
        assert!(!state.is_open(), "streak was broken by the success");
    }

    #[test]
    fn backoff_cost_doubles_and_caps() {
        let p = RetryPolicy {
            base_backoff_cost: 10,
            max_backoff_cost: 55,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_cost(1), 10);
        assert_eq!(p.backoff_cost(2), 20);
        assert_eq!(p.backoff_cost(3), 40);
        assert_eq!(p.backoff_cost(4), 55, "capped");
        assert_eq!(p.backoff_cost(200), 55, "huge attempt numbers do not overflow");
    }

    #[test]
    fn traced_runs_record_retries_and_breaker_opening() {
        let policy =
            RetryPolicy { max_attempts: 3, breaker_threshold: 1, ..RetryPolicy::default() };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let sink = TraceSink::enabled(32);
        let err = state
            .run_traced(&policy, &health, &sink, Some("db"), "fill(h1)", || {
                Err::<(), _>(LxpError::SourceError("down".into()))
            })
            .unwrap_err();
        assert!(matches!(err, RetryError::Exhausted { attempts: 3, .. }));
        let events = sink.events();
        let retries: Vec<_> =
            events.iter().filter(|e| matches!(e.kind, TraceKind::Retry { .. })).collect();
        assert_eq!(retries.len(), 2, "attempts 1 and 2 were retried: {events:?}");
        assert!(retries.iter().all(|e| e.source.as_deref() == Some("db")));
        assert!(
            events.iter().any(|e| matches!(
                &e.kind,
                TraceKind::BreakerOpen { request } if request == "fill(h1)"
            )),
            "breaker opening recorded: {events:?}"
        );
        assert!(state.is_open());
        state.reset();
        assert!(!state.is_open(), "reset closes the breaker");
    }

    #[test]
    fn untraced_run_emits_no_events_even_when_forced() {
        // `run` delegates through a hard-off sink: the plain entry point
        // never records, even under MIX_TRACE_FORCE.
        let policy = RetryPolicy::default();
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let got = state.run(&policy, &health, flaky(2)).unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn half_open_probe_closes_the_breaker_on_success() {
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 1,
            half_open_after: 2,
            ..RetryPolicy::default()
        };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let sink = TraceSink::enabled(32);
        // Trip the breaker.
        let _ = state
            .run_traced(&policy, &health, &sink, Some("db"), "fill(h)", || {
                Err::<(), _>(LxpError::SourceError("down".into()))
            })
            .unwrap_err();
        assert!(state.is_open());
        assert_eq!(health.status(), HealthStatus::Unavailable);
        // First rejected call: no wrapper touch yet.
        let mut called = false;
        let err = state
            .run(&policy, &health, || {
                called = true;
                Ok::<_, LxpError>(1)
            })
            .unwrap_err();
        assert_eq!(err, RetryError::CircuitOpen);
        assert!(!called, "still pacing before the probe");
        // Second call is the half-open probe; it succeeds and the circuit
        // closes, health recovers, and the closure is traced.
        let got = state
            .run_traced(&policy, &health, &sink, Some("db"), "fill(h)", || {
                Ok::<_, LxpError>(7)
            })
            .unwrap();
        assert_eq!(got, 7);
        assert!(!state.is_open());
        assert_eq!(health.status(), HealthStatus::Healthy);
        assert!(sink.events().iter().any(|e| matches!(e.kind, TraceKind::BreakerClose)));
    }

    #[test]
    fn failed_probe_keeps_the_circuit_open_and_re_paces() {
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 1,
            half_open_after: 1,
            ..RetryPolicy::default()
        };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let down = || Err::<(), _>(LxpError::SourceError("down".into()));
        let _ = state.run(&policy, &health, down).unwrap_err();
        assert!(state.is_open());
        // With half_open_after == 1 every open call is a probe; a failing
        // probe reports CircuitOpen and the breaker stays open.
        let err = state.run(&policy, &health, down).unwrap_err();
        assert_eq!(err, RetryError::CircuitOpen);
        assert!(state.is_open());
        assert_eq!(health.status(), HealthStatus::Unavailable);
        // Recovery on the next probe.
        state.run(&policy, &health, || Ok::<_, LxpError>(1)).unwrap();
        assert!(!state.is_open());
    }

    #[test]
    fn half_open_disabled_keeps_rejecting_forever() {
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 1,
            half_open_after: 0,
            ..RetryPolicy::default()
        };
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let _ = state
            .run(&policy, &health, || Err::<(), _>(LxpError::SourceError("x".into())))
            .unwrap_err();
        for _ in 0..16 {
            let mut called = false;
            let err = state
                .run(&policy, &health, || {
                    called = true;
                    Ok::<_, LxpError>(1)
                })
                .unwrap_err();
            assert_eq!(err, RetryError::CircuitOpen);
            assert!(!called);
        }
    }

    #[test]
    fn policy_none_is_single_shot() {
        let policy = RetryPolicy::none();
        let health = SourceHealth::new();
        let mut state = RetryState::new();
        let err = state.run(&policy, &health, flaky(1)).unwrap_err();
        assert!(matches!(err, RetryError::Exhausted { attempts: 1, .. }));
        assert!(!state.is_open(), "breaker disabled at threshold 0");
    }
}
