//! The Lean XML fragment Protocol (LXP, paper §4).
//!
//! "LXP is very simple and comprises only two commands, `get_root` and
//! `fill`." The buffer (client) asks for a handle to the root of the
//! wrapper's virtual document, then repeatedly fills holes; the wrapper
//! answers each fill with a fragment list at *its* preferred granularity,
//! possibly leaving further holes.
//!
//! To ensure correctness and termination the paper requires only that
//! (i) the refinements extend to the complete source tree, and (ii)
//! *progress is made*: "a non-empty result list cannot only consist of
//! holes, and there can be no two adjacent holes". [`check_progress`]
//! enforces (ii) on every reply; (i) is the wrapper's contract.

use crate::fragment::Fragment;
use std::fmt;

/// Identifier of a hole. Opaque to the buffer; wrappers usually encode all
/// the information needed to answer the fill into the id itself (like the
/// relational wrapper's `db_name.table.row_number`), avoiding lookup
/// tables.
pub type HoleId = String;

/// Errors in the buffer/wrapper conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LxpError {
    /// The wrapper does not know the given hole id.
    UnknownHole(HoleId),
    /// The source named in `get_root` does not exist.
    UnknownSource(String),
    /// A fill reply violated the progress invariant.
    ProtocolViolation(String),
    /// Source-side failure (connection lost, page fetch failed, …).
    SourceError(String),
}

impl LxpError {
    /// Is this error worth retrying? Source-side failures (lost
    /// connections, failed page fetches) are weather; everything else —
    /// unknown holes/sources, protocol violations — is an integration bug
    /// that no amount of retrying will fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, LxpError::SourceError(_))
    }
}

impl fmt::Display for LxpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LxpError::UnknownHole(id) => write!(f, "unknown hole id `{id}`"),
            LxpError::UnknownSource(uri) => write!(f, "unknown source `{uri}`"),
            LxpError::ProtocolViolation(msg) => write!(f, "LXP protocol violation: {msg}"),
            LxpError::SourceError(msg) => write!(f, "source error: {msg}"),
        }
    }
}

impl std::error::Error for LxpError {}

/// The wrapper side of LXP.
pub trait LxpWrapper {
    /// `get_root(URI) → hole[id]`: establish the connection and obtain a
    /// hole standing for the root element of the exported view.
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError>;

    /// `fill(hole[id]) → [T]`: partially explore the part of the source
    /// tree represented by the hole.
    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError>;
}

impl<W: LxpWrapper + ?Sized> LxpWrapper for Box<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        (**self).get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        (**self).fill(hole)
    }
}

/// Enforce the progress invariant on a fill reply: a non-empty reply must
/// contain at least one non-hole fragment, and no two holes may be
/// adjacent.
pub fn check_progress(reply: &[Fragment]) -> Result<(), LxpError> {
    if !reply.is_empty() && reply.iter().all(Fragment::is_hole) {
        return Err(LxpError::ProtocolViolation(
            "non-empty fill reply consists only of holes".into(),
        ));
    }
    for pair in reply.windows(2) {
        if pair[0].is_hole() && pair[1].is_hole() {
            return Err(LxpError::ProtocolViolation("two adjacent holes in fill reply".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_accepts_paper_example_7_replies() {
        // fill(◦2) = [◦4, d[◦5], ◦6] — legal despite leading/trailing holes.
        let reply = vec![
            Fragment::hole("4"),
            Fragment::node("d", vec![Fragment::hole("5")]),
            Fragment::hole("6"),
        ];
        assert!(check_progress(&reply).is_ok());
        // fill(◦4) = [] — dead end, legal.
        assert!(check_progress(&[]).is_ok());
        // fill(◦6) = [e].
        assert!(check_progress(&[Fragment::leaf("e")]).is_ok());
    }

    #[test]
    fn progress_rejects_all_holes() {
        let reply = vec![Fragment::hole("1")];
        let err = check_progress(&reply).unwrap_err();
        assert!(matches!(err, LxpError::ProtocolViolation(_)));
    }

    #[test]
    fn progress_rejects_adjacent_holes() {
        let reply = vec![Fragment::leaf("a"), Fragment::hole("1"), Fragment::hole("2")];
        assert!(check_progress(&reply).is_err());
    }

    #[test]
    fn only_source_errors_are_transient() {
        assert!(LxpError::SourceError("timeout".into()).is_transient());
        assert!(!LxpError::UnknownHole("h".into()).is_transient());
        assert!(!LxpError::UnknownSource("db".into()).is_transient());
        assert!(!LxpError::ProtocolViolation("holes".into()).is_transient());
    }

    #[test]
    fn error_display() {
        assert_eq!(LxpError::UnknownHole("x.y".into()).to_string(), "unknown hole id `x.y`");
        assert!(LxpError::UnknownSource("db".into()).to_string().contains("db"));
    }
}
