//! The Lean XML fragment Protocol (LXP, paper §4).
//!
//! "LXP is very simple and comprises only two commands, `get_root` and
//! `fill`." The buffer (client) asks for a handle to the root of the
//! wrapper's virtual document, then repeatedly fills holes; the wrapper
//! answers each fill with a fragment list at *its* preferred granularity,
//! possibly leaving further holes.
//!
//! To ensure correctness and termination the paper requires only that
//! (i) the refinements extend to the complete source tree, and (ii)
//! *progress is made*: "a non-empty result list cannot only consist of
//! holes, and there can be no two adjacent holes". [`check_progress`]
//! enforces (ii) on every reply; (i) is the wrapper's contract.

use crate::fragment::Fragment;
use std::fmt;

/// Identifier of a hole. Opaque to the buffer; wrappers usually encode all
/// the information needed to answer the fill into the id itself (like the
/// relational wrapper's `db_name.table.row_number`), avoiding lookup
/// tables.
pub type HoleId = String;

/// Errors in the buffer/wrapper conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LxpError {
    /// The wrapper does not know the given hole id.
    UnknownHole(HoleId),
    /// The source named in `get_root` does not exist.
    UnknownSource(String),
    /// A fill reply violated the progress invariant.
    ProtocolViolation(String),
    /// Source-side failure (connection lost, page fetch failed, …).
    SourceError(String),
}

impl LxpError {
    /// Is this error worth retrying? Source-side failures (lost
    /// connections, failed page fetches) are weather; everything else —
    /// unknown holes/sources, protocol violations — is an integration bug
    /// that no amount of retrying will fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, LxpError::SourceError(_))
    }
}

impl fmt::Display for LxpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LxpError::UnknownHole(id) => write!(f, "unknown hole id `{id}`"),
            LxpError::UnknownSource(uri) => write!(f, "unknown source `{uri}`"),
            LxpError::ProtocolViolation(msg) => write!(f, "LXP protocol violation: {msg}"),
            LxpError::SourceError(msg) => write!(f, "source error: {msg}"),
        }
    }
}

impl std::error::Error for LxpError {}

/// One hole's reply within a batched `fill_many` exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// The hole this item answers.
    pub hole: HoleId,
    /// The fill reply for that hole (same semantics as a plain `fill`).
    pub fragments: Vec<Fragment>,
}

impl BatchItem {
    /// Convenience constructor.
    pub fn new(hole: impl Into<HoleId>, fragments: Vec<Fragment>) -> Self {
        BatchItem { hole: hole.into(), fragments }
    }
}

/// The wrapper side of LXP.
pub trait LxpWrapper {
    /// `get_root(URI) → hole[id]`: establish the connection and obtain a
    /// hole standing for the root element of the exported view.
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError>;

    /// `fill(hole[id]) → [T]`: partially explore the part of the source
    /// tree represented by the hole.
    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError>;

    /// `fill_many([hole[id]]) → [(hole[id], [T])]`: batched fills — one
    /// exchange answering several holes, amortizing per-request overhead.
    ///
    /// Contract:
    /// * the reply starts with exactly one item per requested hole, in
    ///   request order, each carrying what `fill` would have returned;
    /// * the wrapper MAY append further *continuation* items answering
    ///   holes of its own replies ("push from below", §4) — e.g. the
    ///   relational wrapper streaming the next cursor ranges, or the web
    ///   wrapper shipping several page fragments per exchange. Clients
    ///   treat continuation items as a readahead cache; each item's
    ///   fragment list is still subject to the progress invariant.
    ///
    /// The default implementation degrades to one `fill` per hole (no
    /// amortization, no continuation), so plain wrappers and adapters
    /// stay correct without changes.
    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        holes
            .iter()
            .map(|h| Ok(BatchItem { hole: h.clone(), fragments: self.fill(h)? }))
            .collect()
    }
}

impl<W: LxpWrapper + ?Sized> LxpWrapper for Box<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        (**self).get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        (**self).fill(hole)
    }

    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        (**self).fill_many(holes)
    }
}

/// A cloneable handle to one wrapper shared by many owners: each clone is
/// an [`LxpWrapper`] that serializes its exchanges on the shared mutex.
///
/// This is how a server gives every session its *own*
/// [`BufferNavigator`](crate::BufferNavigator) — own open tree, own
/// pending batch cache, dropped at session close — over *one* wrapper
/// connection per source. Exchanges serialize per source (the same
/// discipline as [`ConcurrentPrefetcher`](crate::ConcurrentPrefetcher)'s
/// wire lock); cross-source parallelism is untouched. Locking is
/// poison-recovering, so one panicking session cannot wedge the wrapper
/// for its neighbours.
pub struct SharedWrapper<W> {
    inner: std::sync::Arc<std::sync::Mutex<W>>,
}

impl<W> Clone for SharedWrapper<W> {
    fn clone(&self) -> Self {
        SharedWrapper { inner: std::sync::Arc::clone(&self.inner) }
    }
}

impl<W> SharedWrapper<W> {
    /// Share `inner` between future clones of this handle.
    pub fn new(inner: W) -> Self {
        SharedWrapper { inner: std::sync::Arc::new(std::sync::Mutex::new(inner)) }
    }

    /// Recover the wrapper if this is the last handle.
    pub fn try_into_inner(self) -> Result<W, Self> {
        match std::sync::Arc::try_unwrap(self.inner) {
            Ok(m) => Ok(m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)),
            Err(inner) => Err(SharedWrapper { inner }),
        }
    }
}

impl<W: LxpWrapper> LxpWrapper for SharedWrapper<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        crate::pool::lock_unpoisoned(&self.inner).get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        crate::pool::lock_unpoisoned(&self.inner).fill(hole)
    }

    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        crate::pool::lock_unpoisoned(&self.inner).fill_many(holes)
    }
}

/// Wrapper-side continuation for `fill_many`: chase up to `budget` holes
/// exposed by the items already in the exchange — trailing-most first,
/// the direction a scanning client moves — and append their replies as
/// continuation items. This is the "push from below" of §4 rendered as
/// extra items in the same exchange: a chunked source answers a
/// sequential scan's whole frontier (chunk after chunk) in one round
/// trip instead of one round trip per chunk.
///
/// Best-effort: a hole whose fill errors simply ends the chase (the
/// client's own fill will face — and retry — that error on the critical
/// path).
pub fn chase_continuation<W: LxpWrapper + ?Sized>(
    wrapper: &mut W,
    items: &mut Vec<BatchItem>,
    budget: usize,
) {
    fn collect(frags: &[Fragment], stack: &mut Vec<HoleId>) {
        for f in frags {
            match f {
                Fragment::Hole(h) => stack.push(h.clone()),
                Fragment::Node { children, .. } => collect(children, stack),
            }
        }
    }
    let mut stack: Vec<HoleId> = Vec::new();
    for item in items.iter() {
        collect(&item.fragments, &mut stack);
    }
    let mut budget = budget;
    while budget > 0 {
        let Some(h) = stack.pop() else { break };
        if items.iter().any(|it| it.hole == h) {
            continue;
        }
        let Ok(reply) = wrapper.fill(&h) else { break };
        budget -= 1;
        collect(&reply, &mut stack);
        items.push(BatchItem { hole: h, fragments: reply });
    }
}

/// Validate the shape of a `fill_many` reply: at least one item per
/// requested hole, and the first `holes.len()` items answer the requested
/// holes in order. Progress of each item's fragment list is checked
/// separately (requested items strictly; continuation items best-effort).
pub fn check_batch_shape(holes: &[HoleId], reply: &[BatchItem]) -> Result<(), LxpError> {
    if reply.len() < holes.len() {
        return Err(LxpError::ProtocolViolation(format!(
            "fill_many answered {} of {} requested holes",
            reply.len(),
            holes.len()
        )));
    }
    for (h, item) in holes.iter().zip(reply) {
        if &item.hole != h {
            return Err(LxpError::ProtocolViolation(format!(
                "fill_many reply out of order: expected `{h}`, got `{}`",
                item.hole
            )));
        }
    }
    Ok(())
}

/// Enforce the progress invariant on a fill reply: a non-empty reply must
/// contain at least one non-hole fragment, and no two holes may be
/// adjacent.
pub fn check_progress(reply: &[Fragment]) -> Result<(), LxpError> {
    if !reply.is_empty() && reply.iter().all(Fragment::is_hole) {
        return Err(LxpError::ProtocolViolation(
            "non-empty fill reply consists only of holes".into(),
        ));
    }
    for pair in reply.windows(2) {
        if pair[0].is_hole() && pair[1].is_hole() {
            return Err(LxpError::ProtocolViolation("two adjacent holes in fill reply".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_accepts_paper_example_7_replies() {
        // fill(◦2) = [◦4, d[◦5], ◦6] — legal despite leading/trailing holes.
        let reply = vec![
            Fragment::hole("4"),
            Fragment::node("d", vec![Fragment::hole("5")]),
            Fragment::hole("6"),
        ];
        assert!(check_progress(&reply).is_ok());
        // fill(◦4) = [] — dead end, legal.
        assert!(check_progress(&[]).is_ok());
        // fill(◦6) = [e].
        assert!(check_progress(&[Fragment::leaf("e")]).is_ok());
    }

    #[test]
    fn progress_rejects_all_holes() {
        let reply = vec![Fragment::hole("1")];
        let err = check_progress(&reply).unwrap_err();
        assert!(matches!(err, LxpError::ProtocolViolation(_)));
    }

    #[test]
    fn progress_rejects_adjacent_holes() {
        let reply = vec![Fragment::leaf("a"), Fragment::hole("1"), Fragment::hole("2")];
        assert!(check_progress(&reply).is_err());
    }

    #[test]
    fn only_source_errors_are_transient() {
        assert!(LxpError::SourceError("timeout".into()).is_transient());
        assert!(!LxpError::UnknownHole("h".into()).is_transient());
        assert!(!LxpError::UnknownSource("db".into()).is_transient());
        assert!(!LxpError::ProtocolViolation("holes".into()).is_transient());
    }

    #[test]
    fn error_display() {
        assert_eq!(LxpError::UnknownHole("x.y".into()).to_string(), "unknown hole id `x.y`");
        assert!(LxpError::UnknownSource("db".into()).to_string().contains("db"));
    }

    /// A wrapper whose `fill` answers any hole with one leaf named after
    /// the hole id — enough to observe the default `fill_many`.
    struct Echo;

    impl LxpWrapper for Echo {
        fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
            Ok("0".into())
        }
        fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
            Ok(vec![Fragment::leaf(hole.as_str())])
        }
    }

    #[test]
    fn default_fill_many_loops_fill_in_order() {
        let holes: Vec<HoleId> = vec!["a".into(), "b".into(), "c".into()];
        let reply = Echo.fill_many(&holes).unwrap();
        assert_eq!(reply.len(), 3, "no continuation items from the default impl");
        for (h, item) in holes.iter().zip(&reply) {
            assert_eq!(&item.hole, h);
            assert_eq!(item.fragments, vec![Fragment::leaf(h.as_str())]);
        }
        check_batch_shape(&holes, &reply).unwrap();
    }

    #[test]
    fn batch_shape_rejects_short_and_misordered_replies() {
        let holes: Vec<HoleId> = vec!["a".into(), "b".into()];
        let short = vec![BatchItem::new("a", vec![])];
        assert!(matches!(
            check_batch_shape(&holes, &short),
            Err(LxpError::ProtocolViolation(_))
        ));
        let misordered =
            vec![BatchItem::new("b", vec![]), BatchItem::new("a", vec![])];
        assert!(matches!(
            check_batch_shape(&holes, &misordered),
            Err(LxpError::ProtocolViolation(_))
        ));
        // Extra continuation items are allowed.
        let with_continuation = vec![
            BatchItem::new("a", vec![]),
            BatchItem::new("b", vec![]),
            BatchItem::new("z", vec![Fragment::leaf("bonus")]),
        ];
        check_batch_shape(&holes, &with_continuation).unwrap();
    }

    #[test]
    fn boxed_wrappers_forward_fill_many() {
        let mut boxed: Box<dyn LxpWrapper> = Box::new(Echo);
        let holes: Vec<HoleId> = vec!["x".into()];
        let reply = boxed.fill_many(&holes).unwrap();
        assert_eq!(reply[0].fragments, vec![Fragment::leaf("x")]);
    }

    #[test]
    fn shared_wrapper_clones_serialize_on_one_wrapper() {
        /// Counts fills so the test can see both clones reached the same
        /// underlying wrapper.
        struct Counting(u64);
        impl LxpWrapper for Counting {
            fn get_root(&mut self, _uri: &str) -> Result<HoleId, LxpError> {
                Ok("0".into())
            }
            fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
                self.0 += 1;
                Ok(vec![Fragment::leaf(hole.as_str())])
            }
        }
        let shared = SharedWrapper::new(Counting(0));
        let mut a = shared.clone();
        let mut b = shared.clone();
        assert_eq!(a.get_root("doc").unwrap(), "0");
        a.fill(&"x".into()).unwrap();
        b.fill(&"y".into()).unwrap();
        drop((a, b));
        let inner = shared.try_into_inner().ok().expect("last handle recovers the wrapper");
        assert_eq!(inner.0, 2, "both clones hit the same wrapper");
    }
}
