//! Injected wire latency for concurrency experiments.
//!
//! The sequential engine pays the *sum* of its sources' exchange
//! latencies; the concurrent engine pays roughly their *max*. To measure
//! that (experiment E18) — and to prove in tests that exchanges really
//! overlap in time — we need a wrapper whose exchanges take real wall
//! clock. [`SlowWrapper`] sleeps for a fixed delay at the start of every
//! LXP exchange (`get_root`, `fill`, `fill_many`), modeling a per-request
//! wire round trip: a batched `fill_many` answering many holes costs one
//! delay, which is exactly the amortization batching buys on a real link.

use crate::lxp::{BatchItem, HoleId, LxpError, LxpWrapper};
use crate::pool::OverlapGauge;
use crate::Fragment;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An LXP wrapper that sleeps `delay` before delegating each exchange.
#[derive(Debug)]
pub struct SlowWrapper<W> {
    inner: W,
    delay: Duration,
    exchanges: Arc<AtomicU64>,
    gauge: OverlapGauge,
}

impl<W> SlowWrapper<W> {
    /// Wrap `inner`, charging `delay` of wall clock per exchange.
    pub fn new(inner: W, delay: Duration) -> Self {
        SlowWrapper {
            inner,
            delay,
            exchanges: Arc::new(AtomicU64::new(0)),
            gauge: OverlapGauge::new(),
        }
    }

    /// Share `gauge` with this wrapper: the delay window of every
    /// exchange counts as in-flight, so a gauge shared across several
    /// sources' wrappers measures true wire-level exchange overlap.
    pub fn with_gauge(mut self, gauge: OverlapGauge) -> Self {
        self.gauge = gauge;
        self
    }

    /// A shared counter of exchanges that have paid the delay; clone it
    /// out before the wrapper disappears into a buffer.
    pub fn exchange_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.exchanges)
    }

    /// Unwrap the inner wrapper.
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn pay(&self) {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        let _in_flight = self.gauge.enter();
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
    }
}

impl<W: LxpWrapper> LxpWrapper for SlowWrapper<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        self.pay();
        self.inner.get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        self.pay();
        self.inner.fill(hole)
    }

    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        // One delay for the whole batch: the point of `fill_many`.
        self.pay();
        self.inner.fill_many(holes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_xml::term::parse_term;
    use std::time::Instant;

    fn wrapper() -> TreeWrapper {
        TreeWrapper::single(&parse_term("a[b,c]").unwrap(), FillPolicy::NodeAtATime)
    }

    #[test]
    fn charges_one_delay_per_exchange() {
        let mut slow = SlowWrapper::new(wrapper(), Duration::from_millis(2));
        let count = slow.exchange_counter();
        let start = Instant::now();
        let root = slow.get_root("doc").unwrap();
        let _ = slow.fill(&root).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn fill_many_pays_once() {
        let mut slow = SlowWrapper::new(wrapper(), Duration::ZERO);
        let count = slow.exchange_counter();
        fn holes_in(frags: &[Fragment], out: &mut Vec<HoleId>) {
            for f in frags {
                match f {
                    Fragment::Hole(h) => out.push(h.clone()),
                    Fragment::Node { children, .. } => holes_in(children, out),
                }
            }
        }
        let root = slow.get_root("doc").unwrap();
        let reply = slow.fill(&root).unwrap();
        let mut holes = Vec::new();
        holes_in(&reply, &mut holes);
        assert!(!holes.is_empty(), "node-at-a-time fill leaves child holes");
        let _ = slow.fill_many(&holes).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 3, "one delay for the whole batch");
    }
}
