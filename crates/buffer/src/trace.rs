//! The flight recorder: structured, ring-buffered trace events.
//!
//! The paper's evaluation method is *counting navigations* (Def. 2, §5),
//! but aggregate counters cannot answer "which client command caused this
//! wire exchange?" or — worse — "was this empty label a real PCDATA node
//! or a degraded fetch?". A [`TraceSink`] records every interesting step
//! of a run as a [`TraceEvent`]: client commands, operator in/out
//! navigation, attribute jumps, LXP `get_root`/`fill`/`fill_many`
//! exchanges, retries, breaker transitions, prefetch hits/misses, and —
//! crucially — every *degradation* (a navigation answered from the
//! fallback path after retries were exhausted).
//!
//! # Span model
//!
//! Events carry a **span id**. The engine bumps the span at every client
//! command (`d`/`r`/`f`/`select`) and every event emitted until the next
//! command — operator cascades, buffer fills, retries, degradations —
//! inherits it. Sharing one sink between the engine and its buffers is
//! what links a client command to the cascade it triggered down the
//! mediator tree.
//!
//! # Zero-cost when disabled
//!
//! The sink is an `Arc`-of-atomics handle (the [`BufferStats`] idiom);
//! instrumented call sites guard event *construction* behind
//! [`TraceSink::is_enabled`] — a single relaxed atomic read — so a disabled
//! sink costs one predictable branch and never allocates. The environment
//! variable `MIX_TRACE_FORCE=1` flips every *default-constructed* sink to
//! enabled, which CI uses to run the whole test suite under tracing and
//! check the observation-only invariant.
//!
//! # Exact accounting
//!
//! Wire-level events carry the same quantities the [`BufferStats`]
//! counters accumulate, so a rollup over a complete trace reproduces the
//! `requests`/`batched_holes`/`wasted_bytes` totals *exactly* (see
//! `mix-core`'s `TraceLog::rollup`): a [`TraceKind::Fill`] with
//! `from_cache: false` is one wire request; a [`TraceKind::FillMany`] is
//! one wire request answering `items` holes and parking `wasted` bytes; a
//! [`TraceKind::Fill`] with `from_cache: true` consumes a parked reply and
//! credits `waste_credit` bytes back.
//!
//! [`BufferStats`]: crate::BufferStats

use crate::metrics::{Counter, MetricsRegistry};
use crate::pool::lock_unpoisoned;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default ring capacity of an enabled sink.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// What happened (one step of a run). Quantities mirror the
/// [`BufferStats`](crate::BufferStats) counters they accompany.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A client command arrived at the engine; starts a new span.
    ClientCommand {
        /// The DOM-VXD command: `d`, `r`, `f`, or `s`.
        cmd: &'static str,
    },
    /// A navigation entered a lazy mediator (operator).
    OperatorIn {
        /// The operator kind, e.g. `join` or `select`.
        op: &'static str,
        /// Which entry point: `first_binding`, `next_binding`.
        call: &'static str,
    },
    /// The navigation left the operator again.
    OperatorOut {
        /// The operator kind.
        op: &'static str,
        /// Did it produce a binding (vs ⊥)?
        produced: bool,
    },
    /// An operator jumped to a variable's attribute (`attr`).
    AttrJump {
        /// The operator kind.
        op: &'static str,
        /// The variable jumped to.
        var: String,
    },
    /// The engine navigated an underlying source on behalf of operators.
    SourceNav {
        /// The command issued on the source: `d`, `r`, `f`, or `s`.
        cmd: &'static str,
    },
    /// The buffer issued `get_root` for its document.
    GetRoot {
        /// The document URI.
        uri: String,
    },
    /// One per-hole fill reply was consumed by the buffer.
    Fill {
        /// The hole that was filled.
        hole: String,
        /// Non-hole nodes in the reply.
        nodes: u64,
        /// Wire bytes of the reply.
        bytes: u64,
        /// Served from the pending batch cache (no wire exchange)?
        from_cache: bool,
        /// Bytes credited back out of `wasted_bytes` on cache consumption.
        waste_credit: u64,
    },
    /// One batched `fill_many` wire exchange.
    FillMany {
        /// The critical hole that triggered the exchange.
        critical: String,
        /// Holes requested in the batch.
        holes: u64,
        /// Per-hole replies received (requested + continuation items).
        items: u64,
        /// Non-hole nodes received across all items.
        nodes: u64,
        /// Wire bytes received across all items.
        bytes: u64,
        /// Bytes parked or dropped as speculative waste.
        wasted: u64,
    },
    /// A transient LXP error was retried.
    Retry {
        /// The request being retried (hole id or URI).
        request: String,
        /// The failed attempt number (1-based).
        attempt: u32,
        /// Simulated backoff cost charged before the next attempt.
        backoff_cost: u64,
        /// The transient error.
        error: String,
    },
    /// The circuit breaker opened: the source is quarantined.
    BreakerOpen {
        /// The request whose failure tripped the breaker.
        request: String,
    },
    /// The circuit breaker was closed again (`reset_faults`).
    BreakerClose,
    /// A navigation could not complete and degraded to its fallback
    /// (`None` / empty label). **This is the event that makes a silently
    /// wrong answer visible.**
    Degradation {
        /// The degraded navigation: `down`, `right`, or `fetch`.
        op: &'static str,
        /// Why it degraded.
        error: String,
    },
    /// A fill was answered from the prefetcher's readahead cache.
    PrefetchHit {
        /// The hole served.
        hole: String,
    },
    /// A fill missed the readahead cache (critical-path round trip).
    PrefetchMiss {
        /// The hole that missed.
        hole: String,
    },
    /// A speculative readahead fill failed (best-effort; the client's own
    /// fill will face the error on the critical path).
    PrefetchFail {
        /// The hole whose readahead failed.
        hole: String,
        /// The error.
        error: String,
    },
    /// A wrapper answered a fill/fill_many (wrapper-side view).
    WrapperFill {
        /// Which wrapper: `relational`, `web`, `oodb`.
        wrapper: &'static str,
        /// Holes asked for.
        holes: u64,
        /// Reply items produced (≥ holes when continuations ride along).
        items: u64,
    },
    /// A fill was answered from the shared cross-query fragment cache —
    /// zero wire exchanges, zero wrapper involvement.
    CacheHit {
        /// The hole served.
        hole: String,
        /// Non-hole nodes in the cached reply.
        nodes: u64,
        /// Wire bytes the cache saved.
        bytes: u64,
    },
    /// A verified fill reply was admitted into the shared fragment cache.
    CacheStore {
        /// The hole whose reply was admitted.
        hole: String,
        /// Wire bytes admitted.
        bytes: u64,
    },
    /// A cache entry was evicted: LRU byte pressure in the shared cache
    /// (`scope: "shared"`) or capacity pressure in the pending batch
    /// cache (`scope: "pending"`).
    CacheEvict {
        /// Which cache evicted: `shared` or `pending`.
        scope: &'static str,
        /// The hole whose entry was evicted.
        hole: String,
        /// Wire bytes evicted.
        bytes: u64,
    },
    /// A source's cached entries were dropped wholesale: a degradation /
    /// breaker-open purge or an explicit `invalidate(source)`. Scope
    /// `shared` is the cross-query cache (epoch bumped); `pending` is
    /// the navigator's own parked batch replies.
    CacheInvalidate {
        /// Which cache was purged: `shared` or `pending`.
        scope: &'static str,
        /// Entries dropped.
        entries: u64,
        /// Wire bytes dropped.
        bytes: u64,
    },
    /// (Client side) one DOM-VXD request frame left for the server within
    /// the current span. The wire twin of [`TraceKind::ClientCommand`]:
    /// counting these reconciles a client-side trace with the frames the
    /// transport actually carried.
    WireRequest {
        /// The wire verb: `open`, `d`, `r`, `f`, `s`, or `close`.
        verb: &'static str,
    },
    /// (Server side) the current span serves a remote client span — the
    /// request frame carried a trace context and the serving layer linked
    /// the session engine's span to it. The merge API stitches traces on
    /// these events: every server-side cascade re-parents onto the client
    /// navigation named here.
    WireSpan {
        /// The client-side span id from the request's trace context.
        client_span: u64,
        /// The wire verb: `open`, `d`, `r`, `f`, `s`, or `close`.
        verb: &'static str,
    },
    /// A `fill_many` exchange transferred a reply that was then rejected
    /// (batch-shape or progress violation): the wire cost is real even
    /// though nothing was consumed, so it is attributed rather than
    /// silently lost.
    FillManyFailed {
        /// The critical hole that triggered the exchange.
        critical: String,
        /// Holes requested in the batch.
        holes: u64,
        /// Per-hole reply items transferred before rejection.
        items: u64,
        /// Non-hole nodes transferred.
        nodes: u64,
        /// Wire bytes transferred (all counted as waste).
        bytes: u64,
        /// Bytes recorded as waste (equals `bytes`).
        wasted: u64,
    },
    /// The semantic answer cache classified a query at engine build time:
    /// `covered` of `total` source branches were rewritten onto recorded
    /// views (wire-free in-memory navigation). Emitted once per engine,
    /// before any navigation, and deliberately neutral in the traffic
    /// rollup — rewritten plans simply issue no wire events to reconcile.
    SemanticRewrite {
        /// The outcome label: `covered`, `partial`, or `miss`.
        outcome: &'static str,
        /// Branches rewritten onto views.
        covered: u32,
        /// Total source branches in the plan.
        total: u32,
    },
}

impl TraceKind {
    /// A stable kebab-case name for querying and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::ClientCommand { .. } => "client-command",
            TraceKind::OperatorIn { .. } => "operator-in",
            TraceKind::OperatorOut { .. } => "operator-out",
            TraceKind::AttrJump { .. } => "attr-jump",
            TraceKind::SourceNav { .. } => "source-nav",
            TraceKind::GetRoot { .. } => "get-root",
            TraceKind::Fill { .. } => "fill",
            TraceKind::FillMany { .. } => "fill-many",
            TraceKind::Retry { .. } => "retry",
            TraceKind::BreakerOpen { .. } => "breaker-open",
            TraceKind::BreakerClose => "breaker-close",
            TraceKind::Degradation { .. } => "degradation",
            TraceKind::PrefetchHit { .. } => "prefetch-hit",
            TraceKind::PrefetchMiss { .. } => "prefetch-miss",
            TraceKind::PrefetchFail { .. } => "prefetch-fail",
            TraceKind::WrapperFill { .. } => "wrapper-fill",
            TraceKind::CacheHit { .. } => "cache-hit",
            TraceKind::CacheStore { .. } => "cache-store",
            TraceKind::CacheEvict { .. } => "cache-evict",
            TraceKind::CacheInvalidate { .. } => "cache-invalidate",
            TraceKind::WireRequest { .. } => "wire-request",
            TraceKind::WireSpan { .. } => "wire-span",
            TraceKind::FillManyFailed { .. } => "fill-many-failed",
            TraceKind::SemanticRewrite { .. } => "semantic-rewrite",
        }
    }
}

/// One recorded step: where in the run (`seq`), which client command
/// caused it (`span`), which source it concerns, and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order of the run).
    pub seq: u64,
    /// Span id of the client command this event belongs to (0 = before
    /// any command).
    pub span: u64,
    /// The source/buffer/wrapper concerned, if any (engine-level events
    /// carry `None`).
    pub source: Option<String>,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<5} span {:<4} ", self.seq, self.span)?;
        if let Some(src) = &self.source {
            write!(f, "[{src}] ")?;
        }
        match &self.kind {
            TraceKind::ClientCommand { cmd } => write!(f, "client `{cmd}`"),
            TraceKind::OperatorIn { op, call } => write!(f, "→ {op}.{call}"),
            TraceKind::OperatorOut { op, produced } => {
                write!(f, "← {op} {}", if *produced { "produced" } else { "⊥" })
            }
            TraceKind::AttrJump { op, var } => write!(f, "{op} attr(${var})"),
            TraceKind::SourceNav { cmd } => write!(f, "source `{cmd}`"),
            TraceKind::GetRoot { uri } => write!(f, "get_root({uri})"),
            TraceKind::Fill { hole, nodes, bytes, from_cache, .. } => {
                let via = if *from_cache { " (batch cache)" } else { "" };
                write!(f, "fill({hole}) = {nodes} nodes / {bytes} B{via}")
            }
            TraceKind::FillMany { critical, holes, items, nodes, bytes, wasted } => write!(
                f,
                "fill_many({critical} +{} holes) = {items} items, {nodes} nodes / {bytes} B ({wasted} B parked)",
                holes.saturating_sub(1)
            ),
            TraceKind::Retry { request, attempt, backoff_cost, error } => {
                write!(f, "retry #{attempt} of {request} (backoff {backoff_cost}): {error}")
            }
            TraceKind::BreakerOpen { request } => write!(f, "breaker OPEN after {request}"),
            TraceKind::BreakerClose => write!(f, "breaker closed"),
            TraceKind::Degradation { op, error } => {
                write!(f, "DEGRADED `{op}`: {error}")
            }
            TraceKind::PrefetchHit { hole } => write!(f, "prefetch hit {hole}"),
            TraceKind::PrefetchMiss { hole } => write!(f, "prefetch miss {hole}"),
            TraceKind::PrefetchFail { hole, error } => {
                write!(f, "prefetch readahead of {hole} failed: {error}")
            }
            TraceKind::WrapperFill { wrapper, holes, items } => {
                write!(f, "{wrapper} wrapper answered {holes} holes with {items} items")
            }
            TraceKind::CacheHit { hole, nodes, bytes } => {
                write!(f, "fill({hole}) = {nodes} nodes / {bytes} B (shared cache, no wire)")
            }
            TraceKind::CacheStore { hole, bytes } => {
                write!(f, "cached reply for {hole} ({bytes} B)")
            }
            TraceKind::CacheEvict { scope, hole, bytes } => {
                write!(f, "{scope} cache evicted {hole} ({bytes} B)")
            }
            TraceKind::CacheInvalidate { scope, entries, bytes } => {
                write!(f, "{scope} cache invalidated: {entries} entries / {bytes} B dropped")
            }
            TraceKind::WireRequest { verb } => write!(f, "wire → `{verb}` frame sent"),
            TraceKind::WireSpan { client_span, verb } => {
                write!(f, "wire ← serving client span {client_span} (`{verb}`)")
            }
            TraceKind::FillManyFailed { critical, holes, items, nodes, bytes, .. } => write!(
                f,
                "fill_many({critical} +{} holes) REJECTED after transfer: {items} items, {nodes} nodes / {bytes} B wasted",
                holes.saturating_sub(1)
            ),
            TraceKind::SemanticRewrite { outcome, covered, total } => {
                write!(f, "semantic cache {outcome}: {covered}/{total} branches from views")
            }
        }
    }
}

#[derive(Debug)]
struct SinkCells {
    enabled: AtomicBool,
    seq: AtomicU64,
    span: AtomicU64,
    capacity: AtomicUsize,
    /// Overflow count as a bindable [`Counter`] so registries can export
    /// it (`mix_trace_dropped_total`) instead of overflow staying silent.
    dropped: Counter,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl Default for SinkCells {
    fn default() -> Self {
        SinkCells {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            span: AtomicU64::new(0),
            capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
            dropped: Counter::new(),
            ring: Mutex::new(VecDeque::new()),
        }
    }
}

/// Is `MIX_TRACE_FORCE=1` set? Cached once per process.
fn force_enabled() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("MIX_TRACE_FORCE").map(|v| v == "1" || v == "true").unwrap_or(false)
    })
}

/// Shared, cloneable handle to one flight recorder.
///
/// Clones share the same ring, sequence counter, and span counter; hand
/// the *same* sink to the engine and every buffer so spans link up.
#[derive(Clone, Debug)]
pub struct TraceSink {
    inner: Arc<SinkCells>,
}

impl Default for TraceSink {
    /// A disabled sink — unless `MIX_TRACE_FORCE=1` is set in the
    /// environment, in which case it records from the start.
    fn default() -> Self {
        let sink = TraceSink { inner: Arc::default() };
        if force_enabled() {
            sink.inner.enabled.store(true, Ordering::Relaxed);
        }
        sink
    }
}

impl TraceSink {
    /// A disabled-by-default sink (env force-enable applies).
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// A sink that is off no matter what the environment says — for
    /// internal delegation paths that must never record.
    pub fn off() -> Self {
        TraceSink { inner: Arc::default() }
    }

    /// An enabled sink with an explicit ring capacity.
    pub fn enabled(capacity: usize) -> Self {
        let sink = TraceSink { inner: Arc::default() };
        sink.inner.capacity.store(capacity.max(1), Ordering::Relaxed);
        sink.inner.enabled.store(true, Ordering::Relaxed);
        sink
    }

    /// Is the recorder currently on? Call sites guard event construction
    /// behind this single atomic read.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (the ring is kept either way).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Change the ring capacity (existing overflow is trimmed and counted
    /// as dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        let mut ring = lock_unpoisoned(&self.inner.ring);
        while ring.len() > capacity {
            ring.pop_front();
            self.inner.dropped.inc();
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Start a new span for a client command and record the command.
    /// Returns the new span id.
    pub fn begin_span(&self, cmd: &'static str) -> u64 {
        let span = self.inner.span.fetch_add(1, Ordering::Relaxed) + 1;
        self.emit(None, TraceKind::ClientCommand { cmd });
        span
    }

    /// The span id events are currently attributed to.
    pub fn current_span(&self) -> u64 {
        self.inner.span.load(Ordering::Relaxed)
    }

    /// Record one event (no-op when disabled — but prefer guarding the
    /// *construction* of `kind` behind [`TraceSink::is_enabled`] too).
    pub fn emit(&self, source: Option<&str>, kind: TraceKind) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        // Sequence allocation happens under the ring lock so that `seq`
        // order and ring order agree even when worker threads emit
        // concurrently with the client thread.
        let mut ring = lock_unpoisoned(&self.inner.ring);
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            span: self.inner.span.load(Ordering::Relaxed),
            source: source.map(str::to_string),
            kind,
        };
        if ring.len() >= self.inner.capacity.load(Ordering::Relaxed) {
            ring.pop_front();
            self.inner.dropped.inc();
        }
        ring.push_back(event);
    }

    /// Copy out the recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.inner.ring).iter().cloned().collect()
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.ring).len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.inner.ring).is_empty()
    }

    /// Events evicted because the ring was full. Exact-accounting checks
    /// require this to be 0.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// The overflow counter itself, sharing cells with this sink — bind
    /// it into a [`MetricsRegistry`] (conventionally as
    /// `mix_trace_dropped_total`) so ring overflow is scrapable.
    pub fn dropped_counter(&self) -> Counter {
        self.inner.dropped.clone()
    }

    /// Bind this sink's overflow counter into `registry` as
    /// `mix_trace_dropped_total` with the given labels.
    pub fn bind_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.bind_counter(
            "mix_trace_dropped_total",
            "Trace events evicted because the flight-recorder ring was full",
            labels,
            &self.inner.dropped,
        );
    }

    /// Forget all recorded events (counters for seq/span keep running).
    pub fn clear(&self) {
        lock_unpoisoned(&self.inner.ring).clear();
        self.inner.dropped.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::off();
        assert!(!sink.is_enabled());
        sink.emit(None, TraceKind::BreakerClose);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn events_inherit_the_current_span() {
        let sink = TraceSink::enabled(64);
        let s1 = sink.begin_span("d");
        sink.emit(Some("doc"), TraceKind::GetRoot { uri: "doc".into() });
        let s2 = sink.begin_span("r");
        sink.emit(
            Some("doc"),
            TraceKind::Fill { hole: "h1".into(), nodes: 1, bytes: 8, from_cache: false, waste_credit: 0 },
        );
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].span, s1);
        assert_eq!(events[1].span, s1);
        assert_eq!(events[2].span, s2);
        assert_eq!(events[3].span, s2);
        assert_eq!(events[1].source.as_deref(), Some("doc"));
        // Sequence numbers are a total order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::enabled(3);
        for _ in 0..5 {
            sink.emit(None, TraceKind::BreakerClose);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let events = sink.events();
        assert_eq!(events[0].seq, 2, "oldest two were evicted");
    }

    #[test]
    fn clones_share_one_ring() {
        let sink = TraceSink::enabled(16);
        let view = sink.clone();
        sink.begin_span("f");
        assert_eq!(view.len(), 1);
        assert_eq!(view.current_span(), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceKind::ClientCommand { cmd: "d" }.name(), "client-command");
        assert_eq!(
            TraceKind::Degradation { op: "fetch", error: "x".into() }.name(),
            "degradation"
        );
        assert_eq!(TraceKind::BreakerClose.name(), "breaker-close");
    }

    #[test]
    fn display_renders_one_line_per_event() {
        let sink = TraceSink::enabled(8);
        sink.begin_span("d");
        sink.emit(
            Some("db"),
            TraceKind::Degradation { op: "fetch", error: "gave up".into() },
        );
        let lines: Vec<String> = sink.events().iter().map(|e| e.to_string()).collect();
        assert!(lines[0].contains("client `d`"), "{lines:?}");
        assert!(lines[1].contains("[db] DEGRADED `fetch`: gave up"), "{lines:?}");
    }
}
