//! Threading knobs and the scoped exchange pool.
//!
//! The paper's mediator fans one client navigation out into LXP exchanges
//! against *independent* sources (join/cross/union inputs touch disjoint
//! wrappers), so those exchanges can run concurrently: the cascade costs
//! the max of the source latencies instead of their sum. This module
//! holds the machinery every concurrent component shares:
//!
//! * [`configured_threads`] — the `MIX_THREADS` environment knob, the
//!   default worker count for pools and prefetch workers;
//! * [`OverlapGauge`] — an in-flight exchange counter whose high-water
//!   mark *proves* exchanges overlapped (the acceptance instrument for
//!   "issues its exchanges concurrently");
//! * [`run_parallel`] — a scoped fork-join pool used for per-source
//!   exchange fan-out (no detached threads, results in input order).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Lock `m`, recovering the guard when a previous holder panicked.
///
/// Every lock in this workspace protects state that stays consistent
/// across a panic: the critical sections either perform single in-place
/// writes or are explicitly cleaned up by the panicking path
/// (`catch_unwind` un-claims before re-raising). Treating poison as fatal
/// would turn one panicking session/worker into a whole-process outage —
/// the cascade `mix-serve` exists to prevent — so shared components
/// recover the inner value instead of propagating the poison.
#[inline]
pub fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery policy as
/// [`lock_unpoisoned`].
#[inline]
pub fn wait_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The `MIX_THREADS` environment knob, read once per process: the default
/// number of worker threads for parallel exchanges and prefetch workers.
/// Unset, unparsable, or `0` all mean `1` (sequential).
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("MIX_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

#[derive(Debug, Default)]
struct OverlapCells {
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    entered: AtomicU64,
}

/// Counts exchanges currently in flight and remembers the high-water
/// mark. A max above 1 is positive proof that two exchanges overlapped in
/// time; a sequential engine can never exceed 1.
#[derive(Clone, Debug, Default)]
pub struct OverlapGauge {
    inner: Arc<OverlapCells>,
}

/// RAII guard for one in-flight exchange (see [`OverlapGauge::enter`]).
pub struct OverlapGuard {
    inner: Arc<OverlapCells>,
}

impl OverlapGauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        OverlapGauge::default()
    }

    /// Mark one exchange in flight until the guard drops.
    pub fn enter(&self) -> OverlapGuard {
        let now = self.inner.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.inner.entered.fetch_add(1, Ordering::Relaxed);
        self.inner.max_in_flight.fetch_max(now, Ordering::AcqRel);
        OverlapGuard { inner: Arc::clone(&self.inner) }
    }

    /// Exchanges in flight right now.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::Acquire)
    }

    /// The most exchanges ever simultaneously in flight.
    pub fn max_overlap(&self) -> u64 {
        self.inner.max_in_flight.load(Ordering::Acquire)
    }

    /// Total exchanges that passed through the gauge.
    pub fn entered(&self) -> u64 {
        self.inner.entered.load(Ordering::Relaxed)
    }
}

impl Drop for OverlapGuard {
    fn drop(&mut self) {
        self.inner.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Run `tasks` on up to `threads` scoped worker threads and return their
/// results in input order. `threads <= 1` (or a single task) runs inline
/// on the caller — the sequential engine pays no thread tax. A panic in a
/// task propagates to the caller when the scope joins.
pub fn run_parallel<T, F>(tasks: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if threads <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Work-stealing by index: each slot is claimed exactly once.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = lock_unpoisoned(&tasks[i]).take().expect("task claimed once");
                let out = task();
                *lock_unpoisoned(&results[i]) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Condvar;

    #[test]
    fn results_come_back_in_input_order() {
        let tasks: Vec<_> = (0..17).map(|i| move || i * 10).collect();
        assert_eq!(run_parallel(tasks, 4), (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_runs_inline() {
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_parallel(tasks, 1), vec![0, 1, 2]);
    }

    #[test]
    fn overlap_gauge_proves_concurrency() {
        // Two tasks rendezvous: each waits until the other is in flight,
        // so the gauge must observe 2 simultaneously in-flight exchanges.
        let gauge = OverlapGauge::new();
        let sync = Arc::new((Mutex::new(0usize), Condvar::new()));
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                let gauge = gauge.clone();
                let sync = Arc::clone(&sync);
                move || {
                    let _guard = gauge.enter();
                    let (lock, cv) = &*sync;
                    let mut here = lock.lock().unwrap();
                    *here += 1;
                    cv.notify_all();
                    while *here < 2 {
                        here = cv.wait(here).unwrap();
                    }
                }
            })
            .collect();
        run_parallel(tasks, 2);
        assert_eq!(gauge.max_overlap(), 2);
        assert_eq!(gauge.in_flight(), 0);
        assert_eq!(gauge.entered(), 2);
    }

    #[test]
    fn gauge_never_exceeds_one_when_sequential() {
        let gauge = OverlapGauge::new();
        for _ in 0..5 {
            let _g = gauge.enter();
        }
        assert_eq!(gauge.max_overlap(), 1);
    }

    #[test]
    fn threads_knob_defaults_to_one() {
        // The suite cannot assume MIX_THREADS is unset, but the parsed
        // value is always at least 1.
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn panics_propagate_from_workers() {
        let hit = Arc::new(AtomicBool::new(false));
        let hit2 = Arc::clone(&hit);
        let result = std::panic::catch_unwind(move || {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| panic!("worker boom")),
                Box::new(move || hit2.store(true, Ordering::Relaxed)),
            ];
            run_parallel(tasks, 2)
        });
        assert!(result.is_err(), "worker panic reaches the caller");
    }
}
