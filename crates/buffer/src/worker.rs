//! Background prefetch workers: speculative fills off the client's
//! critical path.
//!
//! The synchronous [`Prefetcher`](crate::Prefetcher) chases readahead
//! *inline*: the client pays for speculation inside its own `fill` call.
//! [`ConcurrentPrefetcher`] moves that work onto dedicated worker threads
//! that chase hole continuations *behind the client cursor*: every reply
//! (the client's or a worker's) seeds the work queue with the holes it
//! contains, and workers fill them while the client is busy elsewhere —
//! navigation latency approaches the max of the outstanding source
//! latencies instead of their sum.
//!
//! # Fill-once discipline
//!
//! Correctness of the differential story ("parallel ≡ sequential traffic
//! after quiesce") rests on one invariant: **every hole crosses the wire
//! at most once**, no matter who asks. A `done` set claims each hole
//! under the state lock before any exchange; a client asking for a hole a
//! worker is already filling *rendezvouses* (waits on the condvar for
//! that in-flight fill) instead of duplicating the exchange. A failed
//! speculative fill un-claims the hole — the client's own retried fill
//! then faces the error on the critical path with its own (deterministic,
//! per-attempt) fault draws.
//!
//! # Lock hierarchy
//!
//! Two locks, never nested: `state` (queue/cache/claims — held briefly)
//! and `wire` (the wrapped wrapper — held for the duration of one
//! exchange, serializing exchanges *per source*; cross-source parallelism
//! comes from each source owning its own prefetcher). All bookkeeping
//! transitions happen `state → unlock → wire → unlock → state`.
//!
//! # Quiesce
//!
//! [`ConcurrentPrefetcher::quiesce`] blocks until no exchange is in
//! flight and no runnable work remains, making wrapper-level traffic
//! counters stable for exact comparisons. [`Drop`] stops and joins the
//! workers, so no exchange ever outlives the adapter.
//!
//! # Panic containment
//!
//! A wrapper that panics mid-exchange must not take the pool — let alone
//! the process — with it. Every wire exchange runs under `catch_unwind`
//! (`exchange_protected`), converting a panic into
//! [`LxpError::SourceError`]: a panicking *speculative* fill is absorbed
//! like a failed one (the hole is un-claimed, the failure counted, the
//! worker keeps serving); a panicking *client-path* exchange surfaces as
//! a typed error on the existing retry/health path, with the hole
//! un-claimed so a retry can cross the wire. All shared locks are taken
//! with
//! [`lock_unpoisoned`], so state another
//! thread poisoned by panicking is recovered, not propagated —
//! `halt_workers`/[`Drop`]/[`quiesce`](ConcurrentPrefetcher::quiesce) can
//! therefore never double-panic, and one bad session in a server cannot
//! poison its neighbours.

use crate::fragment::Fragment;
use crate::health::SourceHealth;
use crate::lxp::{BatchItem, HoleId, LxpError, LxpWrapper};
use crate::pool::{lock_unpoisoned, wait_unpoisoned, OverlapGauge};
use crate::trace::{TraceKind, TraceSink};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Run one wire exchange, converting a panic in the wrapper into an
/// [`LxpError::SourceError`] so callers can handle "the wrapper blew up"
/// and "the wrapper failed" through one recovery path. The overlap gauge
/// guard lives inside the protected closure, so the in-flight count stays
/// exact even when the exchange unwinds.
fn exchange_protected<T>(
    op: impl FnOnce() -> Result<T, LxpError>,
) -> Result<T, LxpError> {
    match catch_unwind(AssertUnwindSafe(op)) {
        Ok(result) => result,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(LxpError::SourceError(format!("wrapper panicked: {what}")))
        }
    }
}

/// Cached-but-unconsumed replies a prefetcher will hold before workers
/// pause (backpressure against runaway speculation).
pub const DEFAULT_PREFETCH_CAP: usize = 4096;

#[derive(Default)]
struct State {
    /// Completed speculative replies awaiting consumption.
    cache: HashMap<HoleId, Vec<Fragment>>,
    /// Holes scheduled for speculative filling.
    queue: VecDeque<HoleId>,
    /// Mirror of `queue` for O(1) duplicate suppression.
    queued: HashSet<HoleId>,
    /// Holes whose wire exchange is happening right now.
    in_flight: HashSet<HoleId>,
    /// Holes ever claimed for a wire exchange (the fill-once set).
    done: HashSet<HoleId>,
}

impl State {
    /// Schedule every hole inside `fragments` for speculative filling.
    fn seed_from(&mut self, fragments: &[Fragment]) {
        let mut stack: Vec<&Fragment> = fragments.iter().collect();
        while let Some(f) = stack.pop() {
            match f {
                Fragment::Hole(h) => {
                    if !self.done.contains(h) && !self.queued.contains(h) {
                        self.queued.insert(h.clone());
                        self.queue.push_back(h.clone());
                    }
                }
                Fragment::Node { children, .. } => stack.extend(children.iter()),
            }
        }
    }

    /// Is there work a worker could start right now (respecting the
    /// cache cap)?
    fn runnable(&self, cap: usize) -> bool {
        !self.queue.is_empty() && self.cache.len() < cap
    }
}

struct Shared<W> {
    wire: Mutex<W>,
    state: Mutex<State>,
    cv: Condvar,
    stop: AtomicBool,
    cap: usize,
    source: String,
    health: SourceHealth,
    trace: TraceSink,
    gauge: OverlapGauge,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    prefetched: AtomicU64,
    failures: AtomicU64,
}

/// An [`LxpWrapper`] adapter that fills holes speculatively on background
/// worker threads (see module docs). Slots under a
/// [`BufferNavigator`](crate::BufferNavigator) like any other wrapper.
pub struct ConcurrentPrefetcher<W: LxpWrapper + Send + 'static> {
    /// `Some` for the adapter's whole life; taken only by `into_inner`.
    shared: Option<Arc<Shared<W>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<W: LxpWrapper + Send + 'static> ConcurrentPrefetcher<W> {
    /// Wrap `inner` with `workers` background fill threads. `workers == 0`
    /// is allowed: the adapter then only deduplicates (no speculation).
    pub fn new(inner: W, workers: usize) -> Self {
        Self::build(inner, workers, DEFAULT_PREFETCH_CAP)
    }

    /// Like [`ConcurrentPrefetcher::new`] with the worker count taken
    /// from the `MIX_THREADS` environment knob.
    pub fn from_env(inner: W) -> Self {
        Self::new(inner, crate::pool::configured_threads())
    }

    /// Full-knob constructor: worker count and cache cap.
    pub fn build(inner: W, workers: usize, cap: usize) -> Self {
        let shared = Arc::new(Shared {
            wire: Mutex::new(inner),
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            cap: cap.max(1),
            source: String::new(),
            health: SourceHealth::new(),
            trace: TraceSink::off(),
            gauge: OverlapGauge::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        });
        let mut this = ConcurrentPrefetcher { shared: Some(shared), workers: Vec::new() };
        this.spawn_workers(workers);
        this
    }

    #[inline]
    fn sh(&self) -> &Arc<Shared<W>> {
        self.shared.as_ref().expect("shared block present until into_inner")
    }

    /// Report degraded speculative fills into `health` (prefetch failures
    /// only — best-effort work never degrades the answer).
    pub fn with_health(self, health: SourceHealth) -> Self {
        self.rebuild_shared(|s| s.health = health)
    }

    /// Emit `prefetch-hit`/`prefetch-miss`/`prefetch-fail` events for
    /// `source` into `sink`.
    pub fn with_trace(self, source: impl Into<String>, sink: TraceSink) -> Self {
        let source = source.into();
        self.rebuild_shared(move |s| {
            s.source = source;
            s.trace = sink;
        })
    }

    /// Count every wire exchange in `gauge` (shared across sources, this
    /// is the exchange-overlap proof instrument).
    pub fn with_gauge(self, gauge: OverlapGauge) -> Self {
        self.rebuild_shared(|s| s.gauge = gauge)
    }

    /// Builder plumbing: halts the workers (making the `Arc` unique),
    /// edits the shared block, and restarts the same number of workers.
    fn rebuild_shared(mut self, edit: impl FnOnce(&mut Shared<W>)) -> Self {
        let workers = self.workers.len();
        self.halt_workers();
        let shared =
            Arc::get_mut(self.shared.as_mut().expect("present")).expect("no worker holds the Arc");
        shared.stop = AtomicBool::new(false);
        edit(shared);
        self.spawn_workers(workers);
        self
    }

    fn spawn_workers(&mut self, n: usize) {
        for _ in 0..n {
            let shared = Arc::clone(self.sh());
            self.workers.push(std::thread::spawn(move || worker_loop(shared)));
        }
    }

    fn halt_workers(&mut self) {
        let Some(shared) = self.shared.as_ref() else { return };
        {
            // The store must happen under the state lock: a worker between
            // its `stop` check and `cv.wait` holds that lock, so a bare
            // store+notify here could land in that window and be lost —
            // the worker would sleep through shutdown and `join` would
            // hang. Holding the lock forces the worker to either see the
            // flag on its next check or be parked where notify reaches it.
            let _state = lock_unpoisoned(&shared.state);
            shared.stop.store(true, Ordering::Release);
        }
        shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until no exchange is in flight and no runnable speculative
    /// work remains. After this returns (and until the next exchange),
    /// wrapper-level traffic counters are stable.
    pub fn quiesce(&self) {
        let shared = self.sh();
        let mut state = lock_unpoisoned(&shared.state);
        while !state.in_flight.is_empty() || state.runnable(shared.cap) {
            state = wait_unpoisoned(&shared.cv, state);
        }
    }

    /// Stop the workers and recover the wrapped wrapper.
    pub fn into_inner(mut self) -> W {
        self.halt_workers();
        let shared = self.shared.take().expect("present");
        match Arc::try_unwrap(shared) {
            Ok(s) => s.wire.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner),
            Err(_) => panic!("worker still holds the shared block after join"),
        }
    }

    /// Fills answered from the speculative cache (no critical-path wire).
    pub fn hits(&self) -> u64 {
        self.sh().hits.load(Ordering::Relaxed)
    }

    /// Fills that went to the wire on the critical path.
    pub fn misses(&self) -> u64 {
        self.sh().misses.load(Ordering::Relaxed)
    }

    /// Fills that rendezvoused with an in-flight speculative exchange.
    pub fn waits(&self) -> u64 {
        self.sh().waits.load(Ordering::Relaxed)
    }

    /// Speculative wire fills completed by workers.
    pub fn prefetched(&self) -> u64 {
        self.sh().prefetched.load(Ordering::Relaxed)
    }

    /// Speculative wire fills that failed (best-effort, un-claimed).
    pub fn failures(&self) -> u64 {
        self.sh().failures.load(Ordering::Relaxed)
    }

    /// Replies sitting in the speculative cache right now.
    pub fn cached(&self) -> usize {
        lock_unpoisoned(&self.sh().state).cache.len()
    }

    /// The overlap gauge counting this source's wire exchanges.
    pub fn gauge(&self) -> OverlapGauge {
        self.sh().gauge.clone()
    }
}

impl<W: LxpWrapper + Send + 'static> Drop for ConcurrentPrefetcher<W> {
    fn drop(&mut self) {
        self.halt_workers();
    }
}

fn worker_loop<W: LxpWrapper + Send + 'static>(shared: Arc<Shared<W>>) {
    loop {
        let hole = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if state.cache.len() < shared.cap {
                    if let Some(h) = state.queue.pop_front() {
                        state.queued.remove(&h);
                        if state.done.contains(&h) {
                            continue; // someone filled it while queued
                        }
                        state.done.insert(h.clone());
                        state.in_flight.insert(h.clone());
                        break h;
                    }
                }
                // Nothing runnable: tell quiescers, then sleep.
                shared.cv.notify_all();
                state = wait_unpoisoned(&shared.cv, state);
            }
        };
        let result = exchange_protected(|| {
            let mut wire = lock_unpoisoned(&shared.wire);
            let _overlap = shared.gauge.enter();
            wire.fill(&hole)
        });
        let mut state = lock_unpoisoned(&shared.state);
        state.in_flight.remove(&hole);
        match result {
            Ok(fragments) => {
                shared.prefetched.fetch_add(1, Ordering::Relaxed);
                state.seed_from(&fragments);
                state.cache.insert(hole, fragments);
            }
            Err(e) => {
                // Un-claim: the client's own fill faces the error (and any
                // retries) on the critical path.
                state.done.remove(&hole);
                shared.failures.fetch_add(1, Ordering::Relaxed);
                shared.health.record_prefetch_failure();
                if shared.trace.is_enabled() {
                    shared.trace.emit(
                        Some(&shared.source),
                        TraceKind::PrefetchFail { hole: hole.clone(), error: e.to_string() },
                    );
                }
            }
        }
        shared.cv.notify_all();
    }
}

impl<W: LxpWrapper + Send + 'static> LxpWrapper for ConcurrentPrefetcher<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        let shared = Arc::clone(self.sh());
        let root = exchange_protected(|| {
            let mut wire = lock_unpoisoned(&shared.wire);
            let _overlap = shared.gauge.enter();
            wire.get_root(uri)
        })?;
        // Seed the chase: workers start pulling the document toward the
        // client before its first fill even arrives.
        let mut state = lock_unpoisoned(&shared.state);
        if !state.done.contains(&root) && !state.queued.contains(&root) {
            state.queued.insert(root.clone());
            state.queue.push_back(root.clone());
            shared.cv.notify_all();
        }
        Ok(root)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        let shared = Arc::clone(self.sh());
        let mut state = lock_unpoisoned(&shared.state);
        loop {
            if let Some(fragments) = state.cache.remove(hole) {
                shared.hits.fetch_add(1, Ordering::Relaxed);
                if shared.trace.is_enabled() {
                    shared
                        .trace
                        .emit(Some(&shared.source), TraceKind::PrefetchHit { hole: hole.clone() });
                }
                shared.cv.notify_all(); // cache shrank: wake workers
                return Ok(fragments);
            }
            if state.in_flight.contains(hole) {
                shared.waits.fetch_add(1, Ordering::Relaxed);
                state = wait_unpoisoned(&shared.cv, state);
                continue;
            }
            // Claim it ourselves.
            state.done.insert(hole.clone());
            state.in_flight.insert(hole.clone());
            break;
        }
        drop(state);
        shared.misses.fetch_add(1, Ordering::Relaxed);
        if shared.trace.is_enabled() {
            shared.trace.emit(Some(&shared.source), TraceKind::PrefetchMiss { hole: hole.clone() });
        }
        let result = exchange_protected(|| {
            let mut wire = lock_unpoisoned(&shared.wire);
            let _overlap = shared.gauge.enter();
            wire.fill(hole)
        });
        let mut state = lock_unpoisoned(&shared.state);
        state.in_flight.remove(hole);
        match &result {
            Ok(fragments) => {
                state.seed_from(fragments);
            }
            Err(_) => {
                // Un-claim so a retry can cross the wire again.
                state.done.remove(hole);
            }
        }
        shared.cv.notify_all();
        result
    }

    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        // Rendezvous with any in-flight speculative fills, then split the
        // batch into cache-served holes and a residual wire batch.
        let shared = Arc::clone(self.sh());
        let mut served: HashMap<HoleId, Vec<Fragment>> = HashMap::new();
        let mut residual: Vec<HoleId> = Vec::new();
        {
            let mut state = lock_unpoisoned(&shared.state);
            for h in holes {
                while state.in_flight.contains(h) {
                    shared.waits.fetch_add(1, Ordering::Relaxed);
                    state = wait_unpoisoned(&shared.cv, state);
                }
                if let Some(frags) = state.cache.remove(h) {
                    shared.hits.fetch_add(1, Ordering::Relaxed);
                    served.insert(h.clone(), frags);
                } else if !served.contains_key(h) && !residual.contains(h) {
                    state.done.insert(h.clone());
                    state.in_flight.insert(h.clone());
                    residual.push(h.clone());
                }
            }
            if !served.is_empty() {
                shared.cv.notify_all();
            }
        }
        let wire_reply = if residual.is_empty() {
            Ok(Vec::new())
        } else {
            shared.misses.fetch_add(residual.len() as u64, Ordering::Relaxed);
            exchange_protected(|| {
                let mut wire = lock_unpoisoned(&shared.wire);
                let _overlap = shared.gauge.enter();
                wire.fill_many(&residual)
            })
        };
        let mut state = lock_unpoisoned(&shared.state);
        for h in &residual {
            state.in_flight.remove(h);
        }
        let mut items = match wire_reply {
            Ok(items) => items,
            Err(e) => {
                // Put back what we took so nothing is lost, and un-claim
                // the residual for the retry.
                for h in &residual {
                    state.done.remove(h);
                }
                for (h, frags) in served {
                    state.cache.insert(h, frags);
                }
                shared.cv.notify_all();
                return Err(e);
            }
        };
        for item in &items {
            state.seed_from(&item.fragments);
        }
        shared.cv.notify_all();
        drop(state);
        // Reassemble in request order: one item per requested hole first
        // (LXP contract), then the wire's continuation items.
        let continuations = items.split_off(residual.len().min(items.len()));
        let mut by_hole: HashMap<HoleId, Vec<Fragment>> =
            items.into_iter().map(|it| (it.hole, it.fragments)).collect();
        by_hole.extend(served);
        let mut out = Vec::with_capacity(holes.len() + continuations.len());
        for h in holes {
            if let Some(frags) = by_hole.remove(h) {
                out.push(BatchItem { hole: h.clone(), fragments: frags });
            }
        }
        out.extend(continuations);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferNavigator;
    use crate::fault::{FaultConfig, FaultyWrapper};
    use crate::retry::RetryPolicy;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_nav::explore::materialize;
    use mix_xml::term::parse_term;

    const TERM: &str = "view[a[x,y],b[z],c,d[w[u],v]]";

    fn wrapper() -> TreeWrapper {
        TreeWrapper::single(&parse_term(TERM).unwrap(), FillPolicy::NodeAtATime)
    }

    #[test]
    fn answers_stay_exact_under_background_prefetch() {
        let mut nav =
            BufferNavigator::new(ConcurrentPrefetcher::new(wrapper(), 3), "doc");
        assert_eq!(materialize(&mut nav).to_string(), TERM);
    }

    #[test]
    fn quiesce_then_counters_account_every_hole_once() {
        let pf = ConcurrentPrefetcher::new(wrapper(), 2);
        let mut nav = BufferNavigator::new(pf, "doc");
        assert_eq!(materialize(&mut nav).to_string(), TERM);
        let pf = nav.into_wrapper();
        pf.quiesce();
        // Every wire fill is either a client miss or a worker prefetch;
        // hits + misses == buffer-issued fills, and no hole crossed twice.
        let client_fills = pf.hits() + pf.misses();
        let wire_fills = pf.misses() + pf.prefetched();
        let seq = {
            let mut nav = BufferNavigator::new(wrapper(), "doc");
            let _ = materialize(&mut nav);
            nav.stats().snapshot().fills
        };
        assert_eq!(client_fills, seq, "buffer issued the same fills as sequential");
        assert!(wire_fills >= seq, "chasing may run ahead, never behind");
        assert_eq!(pf.cached() as u64, wire_fills - client_fills, "surplus is cached, not lost");
    }

    #[test]
    fn speculative_failures_unclaim_and_let_the_client_retry() {
        let faulty = FaultyWrapper::new(wrapper(), FaultConfig::transient(5, 0.3));
        let stats = faulty.stats();
        let pf = ConcurrentPrefetcher::new(faulty, 2);
        let mut nav = BufferNavigator::with_retry(
            pf,
            "doc",
            RetryPolicy { max_attempts: 32, ..RetryPolicy::default() },
        );
        assert_eq!(materialize(&mut nav).to_string(), TERM, "faults retried away");
        assert!(stats.snapshot().requests > 0);
    }

    #[test]
    fn zero_workers_degenerates_to_passthrough() {
        let mut nav =
            BufferNavigator::new(ConcurrentPrefetcher::new(wrapper(), 0), "doc");
        assert_eq!(materialize(&mut nav).to_string(), TERM);
        let pf = nav.into_wrapper();
        assert_eq!(pf.prefetched(), 0);
        assert_eq!(pf.hits(), 0);
    }

    #[test]
    fn into_inner_recovers_the_wrapper_after_joining() {
        let pf = ConcurrentPrefetcher::new(wrapper(), 4);
        let mut inner = pf.into_inner();
        assert!(inner.get_root("doc").is_ok(), "wrapper survives the teardown");
    }

    #[test]
    fn teardown_never_hangs_while_workers_race_the_stop_flag() {
        // Churn construction and teardown while workers are mid-transition
        // between claiming work and parking on the condvar: the stop flag
        // is published under the state lock, so no worker can park through
        // a shutdown notification and wedge the join.
        for round in 0..200 {
            let mut pf = ConcurrentPrefetcher::new(wrapper(), 2);
            if round % 2 == 0 {
                let _ = pf.get_root("doc"); // seed the queue → workers wake
            }
            drop(pf); // must always join promptly
        }
    }

    #[test]
    fn batched_fills_merge_cache_and_wire() {
        let inner = TreeWrapper::single(&parse_term(TERM).unwrap(), FillPolicy::Chunked { n: 2 });
        let pf = ConcurrentPrefetcher::new(inner, 2);
        let mut nav = BufferNavigator::new(pf, "doc").batched(4);
        assert_eq!(materialize(&mut nav).to_string(), TERM);
    }

    /// Delegating wrapper whose first `panics_left` fills panic outright —
    /// the injection instrument for the poison-cascade regression tests.
    struct PanicOnFill<W> {
        inner: W,
        panics_left: u64,
    }

    impl<W: LxpWrapper> LxpWrapper for PanicOnFill<W> {
        fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
            self.inner.get_root(uri)
        }

        fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
            if self.panics_left > 0 {
                self.panics_left -= 1;
                panic!("injected wrapper panic");
            }
            self.inner.fill(hole)
        }
    }

    #[test]
    fn panicking_worker_closure_still_quiesces_and_joins() {
        // Every speculative fill panics. Pre-fix this poisoned the shared
        // state and wedged/poisoned quiesce + Drop; now the panic is
        // absorbed as a prefetch failure and the pool stays serviceable.
        let inner = PanicOnFill { inner: wrapper(), panics_left: u64::MAX };
        let mut pf = ConcurrentPrefetcher::new(inner, 2);
        let root = pf.get_root("doc").expect("root exchange does not fill");
        pf.quiesce();
        assert!(pf.failures() >= 1, "panicked speculative fill counted as failure");
        // The client's own fill meets the panic as a typed error, not an
        // unwind — and the hole stays claimable for retries.
        let err = pf.fill(&root).unwrap_err();
        assert!(err.to_string().contains("panicked"), "typed panic error: {err}");
        drop(pf); // must join cleanly, never double-panic
    }

    #[test]
    fn client_path_panic_unclaims_and_retry_succeeds() {
        let inner = PanicOnFill { inner: wrapper(), panics_left: 1 };
        let mut pf = ConcurrentPrefetcher::new(inner, 0); // no speculation: deterministic path
        let root = pf.get_root("doc").unwrap();
        let err = pf.fill(&root).unwrap_err();
        assert!(matches!(err, LxpError::SourceError(_)), "panic became a source error");
        let frags = pf.fill(&root).expect("un-claimed hole crossed the wire on retry");
        assert!(!frags.is_empty());
    }

    #[test]
    fn panics_retried_away_like_faults() {
        // End-to-end: sporadic wrapper panics behave exactly like injected
        // transient faults — the navigator's retry policy absorbs them and
        // the answer stays exact.
        let inner = PanicOnFill { inner: wrapper(), panics_left: 3 };
        let pf = ConcurrentPrefetcher::new(inner, 2);
        let mut nav = BufferNavigator::with_retry(
            pf,
            "doc",
            RetryPolicy { max_attempts: 32, ..RetryPolicy::default() },
        );
        assert_eq!(materialize(&mut nav).to_string(), TERM);
    }
}
