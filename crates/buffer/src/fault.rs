//! Seeded fault injection for the buffer–wrapper path.
//!
//! [`FaultyWrapper`] wraps any [`LxpWrapper`] and makes it misbehave the
//! way live web sources do: transient `SourceError`s at a configurable
//! rate, latency spikes charged in simulated cost units, and an optional
//! permanent outage after N requests. Faults are drawn from a SplitMix64
//! mix seeded by [`FaultConfig::seed`], so every experiment and test
//! replays the exact same fault schedule — the fault-injection analogue of
//! the deterministic workload generators in `mix-wrappers::gen`.
//!
//! # Order-independent schedules
//!
//! Each draw is a pure function of `(seed, request kind, request detail,
//! per-request attempt number)` — **not** of a shared sequential RNG
//! stream. The fate of "attempt 3 on hole `doc|a|0|1`" is therefore the
//! same whether a prefetch worker or the client thread issues it, and the
//! same no matter how concurrent exchanges on *other* holes interleave
//! with it. This is what keeps fault-schedule proptests reproducible when
//! exchanges run on worker threads: a shared stream would hand different
//! draws to the same request depending on scheduling order.
//!
//! A fresh draw happens on every *attempt* (the per-request attempt
//! counter advances), so a request that failed transiently can succeed
//! when the buffer retries it. A permanent outage
//! ([`FaultConfig::fail_after`]) counts attempts globally — an outage is a
//! property of the source, not of one request — and fails every attempt
//! from then on, which is what the retry layer's circuit breaker exists
//! for.

use crate::fragment::Fragment;
use crate::lxp::{BatchItem, HoleId, LxpError, LxpWrapper};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault schedule knobs. Rates are probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a `fill` attempt fails transiently.
    pub fill_fault_rate: f64,
    /// Probability that a `get_root` attempt fails transiently.
    pub get_root_fault_rate: f64,
    /// Probability that a successful request suffers a latency spike.
    pub latency_spike_rate: f64,
    /// Simulated cost units one latency spike adds.
    pub latency_spike_cost: u64,
    /// After this many requests (attempts, including injected failures),
    /// the source goes down for good: every further attempt fails.
    pub fail_after: Option<u64>,
}

impl FaultConfig {
    /// A schedule that injects transient faults on `rate` of fill and
    /// get_root attempts, nothing else.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            fill_fault_rate: rate,
            get_root_fault_rate: rate,
            latency_spike_rate: 0.0,
            latency_spike_cost: 0,
            fail_after: None,
        }
    }

    /// A schedule with no random faults that takes the source down
    /// permanently after `n` requests.
    pub fn outage_after(n: u64) -> Self {
        FaultConfig {
            seed: 0,
            fill_fault_rate: 0.0,
            get_root_fault_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_cost: 0,
            fail_after: Some(n),
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::transient(0, 0.0)
    }
}

#[derive(Default, Debug)]
struct FaultCells {
    requests: AtomicU64,
    injected_faults: AtomicU64,
    latency_spikes: AtomicU64,
    injected_cost: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStatsSnapshot {
    /// Attempts that reached the faulty layer (including failed ones).
    pub requests: u64,
    /// Transient failures injected (outage failures included).
    pub injected_faults: u64,
    /// Latency spikes injected on successful requests.
    pub latency_spikes: u64,
    /// Total simulated cost added by latency spikes.
    pub injected_cost: u64,
}

/// Shared counters describing what the injector actually did.
#[derive(Clone, Default, Debug)]
pub struct FaultStats {
    inner: Arc<FaultCells>,
}

impl FaultStats {
    /// Read the totals.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            requests: self.inner.requests.load(Ordering::Relaxed),
            injected_faults: self.inner.injected_faults.load(Ordering::Relaxed),
            latency_spikes: self.inner.latency_spikes.load(Ordering::Relaxed),
            injected_cost: self.inner.injected_cost.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64 finalizer: a statistically solid 64→64 bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string — stable request-key hashing (independent of the
/// std hasher's per-process randomization).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An [`LxpWrapper`] adapter injecting seeded faults (see module docs).
pub struct FaultyWrapper<W> {
    inner: W,
    config: FaultConfig,
    /// Per-request attempt counters, keyed by the stable hash of
    /// `(kind, detail)`. The counter — not a shared RNG stream — is the
    /// only mutable state a draw depends on, so schedules are a function
    /// of each request's own history.
    attempts: HashMap<u64, u64>,
    stats: FaultStats,
}

impl<W: LxpWrapper> FaultyWrapper<W> {
    /// Wrap `inner` under the given fault schedule.
    pub fn new(inner: W, config: FaultConfig) -> Self {
        FaultyWrapper { inner, config, attempts: HashMap::new(), stats: FaultStats::default() }
    }

    /// Shared handle to the injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// The wrapped wrapper.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Tear down the adapter and recover the wrapper.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The deterministic draw for stream `tag` of this request-attempt.
    fn draw(&self, key: u64, attempt: u64, tag: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let z = mix64(self.config.seed ^ mix64(key ^ mix64(attempt ^ mix64(tag))));
        ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Decide this attempt's fate: `Err` to inject a failure, `Ok` to let
    /// it through (after maybe charging a latency spike).
    fn gate(&mut self, rate: f64, what: &str, detail: &str) -> Result<(), LxpError> {
        let n = self.stats.inner.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.fail_after.is_some_and(|limit| n > limit) {
            self.stats.inner.injected_faults.fetch_add(1, Ordering::Relaxed);
            return Err(LxpError::SourceError(format!(
                "injected outage: source down after request {limit} ({what} {detail})",
                limit = self.config.fail_after.unwrap_or(0),
            )));
        }
        let key = fnv1a(what) ^ fnv1a(detail).rotate_left(17);
        let attempt = {
            let c = self.attempts.entry(key).or_insert(0);
            *c += 1;
            *c
        };
        if self.draw(key, attempt, 1, rate) {
            self.stats.inner.injected_faults.fetch_add(1, Ordering::Relaxed);
            return Err(LxpError::SourceError(format!(
                "injected transient fault on {what} {detail} (attempt {attempt})"
            )));
        }
        if self.draw(key, attempt, 2, self.config.latency_spike_rate) {
            self.stats.inner.latency_spikes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .inner
                .injected_cost
                .fetch_add(self.config.latency_spike_cost, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl<W: LxpWrapper> LxpWrapper for FaultyWrapper<W> {
    fn get_root(&mut self, uri: &str) -> Result<HoleId, LxpError> {
        self.gate(self.config.get_root_fault_rate, "get_root", uri)?;
        self.inner.get_root(uri)
    }

    fn fill(&mut self, hole: &HoleId) -> Result<Vec<Fragment>, LxpError> {
        self.gate(self.config.fill_fault_rate, "fill", hole)?;
        self.inner.fill(hole)
    }

    fn fill_many(&mut self, holes: &[HoleId]) -> Result<Vec<BatchItem>, LxpError> {
        // One wire exchange, one fault opportunity: a batch fails or
        // survives as a unit, like a single dropped response would.
        let detail = holes.first().cloned().unwrap_or_default();
        self.gate(self.config.fill_fault_rate, "fill_many", &detail)?;
        self.inner.fill_many(holes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewrap::{FillPolicy, TreeWrapper};
    use mix_xml::term::parse_term;

    fn wrapper() -> TreeWrapper {
        TreeWrapper::single(&parse_term("r[a,b,c]").unwrap(), FillPolicy::NodeAtATime)
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(1, 0.0));
        let root = w.get_root("doc").unwrap();
        let reply = w.fill(&root).unwrap();
        assert!(!reply.is_empty());
        let s = w.stats().snapshot();
        assert_eq!(s.injected_faults, 0);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn schedules_replay_deterministically() {
        let run = || {
            let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(7, 0.5));
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                outcomes.push(w.get_root("doc").is_ok());
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn schedules_are_per_request_not_a_shared_sequence() {
        // The fate of attempt k on request X must not depend on how many
        // *other* requests were interleaved before it — that is what makes
        // schedules reproducible under concurrent exchanges.
        let solo = {
            let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(42, 0.5));
            (0..20).map(|_| w.get_root("doc").is_ok()).collect::<Vec<_>>()
        };
        let interleaved = {
            let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(42, 0.5));
            (0..20)
                .map(|_| {
                    // Noise on a different request key between every attempt.
                    let _ = w.fill(&HoleId::from("doc|noise|0|0"));
                    w.get_root("doc").is_ok()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved, "interleaving other requests changed the schedule");
    }

    #[test]
    fn retrying_a_transient_fault_can_succeed() {
        let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(3, 0.5));
        let successes = (0..64).filter(|_| w.get_root("doc").is_ok()).count();
        assert!(successes > 0, "fresh draw per attempt lets retries through");
        assert!(successes < 64, "seed 3 injects at 50%");
        assert_eq!(w.stats().snapshot().injected_faults, 64 - successes as u64);
    }

    #[test]
    fn injected_errors_are_transient_source_errors() {
        let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(0, 1.0));
        let err = w.get_root("doc").unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn outage_is_permanent_from_fail_after_on() {
        let mut w = FaultyWrapper::new(wrapper(), FaultConfig::outage_after(2));
        let root = w.get_root("doc").unwrap();
        let _ = w.fill(&root).unwrap();
        for _ in 0..5 {
            let err = w.fill(&root).unwrap_err();
            assert!(err.to_string().contains("outage"), "{err}");
        }
    }

    #[test]
    fn batched_fills_are_one_fault_opportunity() {
        let mut w = FaultyWrapper::new(wrapper(), FaultConfig::transient(1, 0.0));
        let holes: Vec<HoleId> = vec!["doc|c|0|0".into(), "doc|c|0|2".into()];
        let items = w.fill_many(&holes).unwrap();
        assert_eq!(items.len(), 2);
        // Two holes, one request through the gate.
        assert_eq!(w.stats().snapshot().requests, 1);
        // And under a certain fault, the whole batch fails as a unit.
        let mut down = FaultyWrapper::new(wrapper(), FaultConfig::transient(0, 1.0));
        let err = down.fill_many(&holes).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn latency_spikes_accrue_cost_without_failing() {
        let cfg = FaultConfig {
            seed: 11,
            latency_spike_rate: 1.0,
            latency_spike_cost: 250,
            ..FaultConfig::default()
        };
        let mut w = FaultyWrapper::new(wrapper(), cfg);
        let root = w.get_root("doc").unwrap();
        let _ = w.fill(&root).unwrap();
        let s = w.stats().snapshot();
        assert_eq!(s.latency_spikes, 2);
        assert_eq!(s.injected_cost, 500);
        assert_eq!(s.injected_faults, 0);
    }
}
