//! A shared, cross-query fragment cache for buffered LXP sources.
//!
//! Every [`BufferNavigator`] starts cold: its open tree and pending batch
//! cache live and die with one navigator, so two clients browsing the
//! same virtual view pay the full wire cost twice. The open trees of
//! paper §4 are exactly the reusable unit — a fill reply for hole `h` of
//! source `s` is valid for *any* navigator over `s` as long as the
//! source has not changed — so this module materializes them in a
//! process-wide [`FragmentCache`] keyed by `(source, hole id)`.
//!
//! Wrapper hole ids are self-describing and deterministic (the tree
//! wrapper derives them from the uri and child position, the relational
//! wrapper from `db.table.row`), which is what makes the key sound
//! across sessions over unchanged sources.
//!
//! # Bounds, recency, and invalidation
//!
//! The cache is byte-budgeted: inserting past the budget evicts the
//! least-recently-used entries first (entries larger than the whole
//! budget are never admitted). Every source has an *epoch*;
//! [`FragmentCache::invalidate`] bumps it and purges the source's
//! entries, so a wrapper outage, an open circuit breaker, or an explicit
//! invalidation can never be papered over with stale fragments. Only
//! verified successful replies are ever inserted — the buffer stores a
//! reply *after* it passed the LXP progress checks, so injected faults
//! and protocol violations cannot poison the cache.
//!
//! [`BufferNavigator`]: crate::buffer::BufferNavigator

use crate::fragment::Fragment;
use crate::lxp::HoleId;
use crate::metrics::{Counter, Gauge, MetricsRegistry};
use crate::pool::lock_unpoisoned;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Default byte budget for a [`FragmentCache`] (4 MiB of wire bytes).
pub const DEFAULT_CACHE_BUDGET: u64 = 4 << 20;

/// Per-source cache effectiveness counters, as returned by
/// [`FragmentCache::source_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCacheStats {
    /// Lookups answered from the cache (no wire exchange).
    pub hits: u64,
    /// Lookups that had to go to the wire.
    pub misses: u64,
    /// Times this source's entries were invalidated (epoch bumps).
    pub invalidations: u64,
}

/// A point-in-time copy of the cache-wide counters, as returned by
/// [`FragmentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentCacheStats {
    /// Lookups answered from the cache across all sources.
    pub hits: u64,
    /// Lookups that missed across all sources.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Inserts that found a same-epoch entry already resident (a racing
    /// worker filled the same hole first) and coalesced into a recency
    /// refresh instead of a re-admission.
    pub coalesced: u64,
    /// Entries evicted by LRU byte pressure.
    pub evictions: u64,
    /// Source-level invalidations (epoch bumps).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Wire bytes currently resident.
    pub bytes: u64,
    /// The configured byte budget.
    pub budget: u64,
}

struct CacheEntry {
    /// `Arc`-backed so a hit hands out a shared handle (refcount bump)
    /// instead of deep-cloning the fragment subtrees.
    fragments: Arc<Vec<Fragment>>,
    bytes: u64,
    epoch: u64,
    tick: u64,
}

#[derive(Default)]
struct CacheInner {
    budget: u64,
    cur_bytes: u64,
    tick: u64,
    entries: HashMap<(String, HoleId), CacheEntry>,
    /// Recency index: tick → key. Ticks are unique (monotone counter),
    /// so eviction pops the smallest tick in `O(log n)`.
    lru: BTreeMap<u64, (String, HoleId)>,
    /// Current epoch per source; entries from older epochs are dead.
    epochs: HashMap<String, u64>,
    /// Cached `get_root` replies per source uri (epoch-guarded like
    /// fragment entries, but exempt from the byte budget: one hole id).
    roots: HashMap<String, (HoleId, u64)>,
    per_source: HashMap<String, SourceCacheStats>,
}

/// A shared, size-bounded (LRU, byte-budgeted), epoch-invalidated cache
/// of LXP fill replies, keyed by `(source, hole id)`.
///
/// Clones share storage (`Rc` inside), like the other observability
/// handles in this crate: hand the same cache to every
/// [`BufferNavigator`] (via
/// [`with_fragment_cache`](crate::buffer::BufferNavigator::with_fragment_cache))
/// that should benefit from — and contribute to — cross-query reuse.
///
/// The aggregate counters are metric cells, so
/// [`FragmentCache::bind_into`] can register the very same storage in a
/// [`MetricsRegistry`] under `mix_fragcache_*` series.
///
/// [`BufferNavigator`]: crate::buffer::BufferNavigator
#[derive(Clone)]
pub struct FragmentCache {
    inner: Arc<Mutex<CacheInner>>,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    coalesced: Counter,
    evictions: Counter,
    invalidations: Counter,
    bytes: Gauge,
    entries: Gauge,
}

impl Default for FragmentCache {
    fn default() -> Self {
        FragmentCache::new()
    }
}

impl std::fmt::Debug for FragmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FragmentCache")
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .field("budget", &s.budget)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl FragmentCache {
    /// A fresh cache with the default byte budget
    /// ([`DEFAULT_CACHE_BUDGET`]).
    pub fn new() -> Self {
        FragmentCache::with_budget(DEFAULT_CACHE_BUDGET)
    }

    /// A fresh cache bounded to `budget` wire bytes. A budget of 0
    /// admits nothing (useful for starving the cache in tests).
    pub fn with_budget(budget: u64) -> Self {
        FragmentCache {
            inner: Arc::new(Mutex::new(CacheInner { budget, ..CacheInner::default() })),
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            coalesced: Counter::new(),
            evictions: Counter::new(),
            invalidations: Counter::new(),
            bytes: Gauge::new(),
            entries: Gauge::new(),
        }
    }

    /// Do `self` and `other` share storage?
    pub fn same_cache(&self, other: &FragmentCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Look up the cached reply for `hole` of `source`, refreshing its
    /// recency. Counts a hit or a miss either way. A hit is clone-free:
    /// the returned `Arc` shares the cached allocation.
    pub fn lookup(&self, source: &str, hole: &HoleId) -> Option<Arc<Vec<Fragment>>> {
        let mut inner = lock_unpoisoned(&self.inner);
        let epoch = inner.epochs.get(source).copied().unwrap_or(0);
        let key = (source.to_string(), hole.clone());
        let fresh = match inner.entries.get(&key) {
            Some(e) if e.epoch == epoch => Some(e.fragments.clone()),
            Some(_) => {
                // Safety net: invalidation purges eagerly, but never
                // serve an entry that outlived its epoch.
                if let Some(dead) = inner.entries.remove(&key) {
                    inner.cur_bytes -= dead.bytes;
                    inner.lru.remove(&dead.tick);
                }
                None
            }
            None => None,
        };
        match fresh {
            Some(fragments) => {
                inner.tick += 1;
                let tick = inner.tick;
                let old = inner.entries.get_mut(&key).map(|e| std::mem::replace(&mut e.tick, tick));
                if let Some(old) = old {
                    inner.lru.remove(&old);
                    inner.lru.insert(tick, key.clone());
                }
                inner.per_source.entry(key.0).or_default().hits += 1;
                drop(inner);
                self.hits.inc();
                self.sync_gauges();
                Some(fragments)
            }
            None => {
                inner.per_source.entry(key.0).or_default().misses += 1;
                drop(inner);
                self.misses.inc();
                self.sync_gauges();
                None
            }
        }
    }

    /// Admit the reply for `hole` of `source`, evicting LRU entries as
    /// needed to respect the byte budget. Replies larger than the whole
    /// budget are not admitted. Admission clones the `Arc`, not the
    /// fragments — the cache and the caller share one allocation.
    /// Returns the `(source, hole, bytes)` of every entry evicted to
    /// make room, so callers can trace them.
    pub fn insert(
        &self,
        source: &str,
        hole: &HoleId,
        fragments: &Arc<Vec<Fragment>>,
    ) -> Vec<(String, HoleId, u64)> {
        let bytes: u64 = fragments.iter().map(|f| f.wire_bytes() as u64).sum();
        let mut inner = lock_unpoisoned(&self.inner);
        if bytes > inner.budget {
            return Vec::new();
        }
        let epoch = inner.epochs.get(source).copied().unwrap_or(0);
        let key = (source.to_string(), hole.clone());
        if let Some(prior) = inner.entries.get(&key) {
            if prior.epoch == epoch {
                // A racing worker admitted this hole between our lookup
                // miss and this insert. Keep the resident entry (hits may
                // already share its allocation) and coalesce into a
                // recency refresh, so concurrent prefetchers don't
                // double-count insertions or churn the LRU.
                inner.tick += 1;
                let tick = inner.tick;
                let old = inner
                    .entries
                    .get_mut(&key)
                    .map(|e| std::mem::replace(&mut e.tick, tick))
                    .expect("entry just observed");
                inner.lru.remove(&old);
                inner.lru.insert(tick, key);
                drop(inner);
                self.coalesced.inc();
                self.sync_gauges();
                return Vec::new();
            }
        }
        if let Some(prior) = inner.entries.remove(&key) {
            inner.cur_bytes -= prior.bytes;
            inner.lru.remove(&prior.tick);
        }
        let mut evicted = Vec::new();
        while inner.cur_bytes + bytes > inner.budget {
            let Some((&tick, _)) = inner.lru.iter().next() else { break };
            let victim_key = inner.lru.remove(&tick).expect("lru index is consistent");
            if let Some(victim) = inner.entries.remove(&victim_key) {
                inner.cur_bytes -= victim.bytes;
                evicted.push((victim_key.0, victim_key.1, victim.bytes));
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.lru.insert(tick, key.clone());
        inner.cur_bytes += bytes;
        inner
            .entries
            .insert(key, CacheEntry { fragments: Arc::clone(fragments), bytes, epoch, tick });
        drop(inner);
        self.insertions.inc();
        self.evictions.add(evicted.len() as u64);
        self.sync_gauges();
        evicted
    }

    /// The cached `get_root` reply for `source`, if any (epoch-guarded).
    pub fn lookup_root(&self, source: &str) -> Option<HoleId> {
        let inner = lock_unpoisoned(&self.inner);
        let epoch = inner.epochs.get(source).copied().unwrap_or(0);
        match inner.roots.get(source) {
            Some((hole, e)) if *e == epoch => Some(hole.clone()),
            _ => None,
        }
    }

    /// Remember `source`'s root hole so warm sessions skip the
    /// `get_root` exchange too.
    pub fn insert_root(&self, source: &str, hole: &HoleId) {
        let mut inner = lock_unpoisoned(&self.inner);
        let epoch = inner.epochs.get(source).copied().unwrap_or(0);
        inner.roots.insert(source.to_string(), (hole.clone(), epoch));
    }

    /// Drop everything cached for `source` and bump its epoch, so
    /// nothing admitted before the call can ever be served again.
    /// Returns `(entries, bytes)` purged (the root entry counts as an
    /// entry of zero bytes).
    ///
    /// The buffer calls this whenever a navigation over `source`
    /// degrades — retries exhausted, a permanent wrapper error, or an
    /// open circuit breaker — and clients may call it by hand when they
    /// know the source changed.
    pub fn invalidate(&self, source: &str) -> (u64, u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        *inner.epochs.entry(source.to_string()).or_insert(0) += 1;
        let dead: Vec<(String, HoleId)> =
            inner.entries.keys().filter(|(s, _)| s == source).cloned().collect();
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for key in dead {
            if let Some(e) = inner.entries.remove(&key) {
                inner.cur_bytes -= e.bytes;
                inner.lru.remove(&e.tick);
                entries += 1;
                bytes += e.bytes;
            }
        }
        if inner.roots.remove(source).is_some() {
            entries += 1;
        }
        inner.per_source.entry(source.to_string()).or_default().invalidations += 1;
        drop(inner);
        self.invalidations.inc();
        self.sync_gauges();
        (entries, bytes)
    }

    /// Drop every entry for every source (budget and counters survive).
    pub fn clear(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        let sources: Vec<String> =
            inner.entries.keys().map(|(s, _)| s.clone()).chain(inner.roots.keys().cloned()).collect();
        for s in sources {
            *inner.epochs.entry(s).or_insert(0) += 1;
        }
        inner.entries.clear();
        inner.lru.clear();
        inner.roots.clear();
        inner.cur_bytes = 0;
        drop(inner);
        self.sync_gauges();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wire bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).cur_bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        lock_unpoisoned(&self.inner).budget
    }

    /// The current epoch of `source` (0 until first invalidated). The
    /// semantic view catalog folds this into its staleness oracle, so a
    /// fragment-level invalidation also retires every dependent view.
    pub fn source_epoch(&self, source: &str) -> u64 {
        lock_unpoisoned(&self.inner).epochs.get(source).copied().unwrap_or(0)
    }

    /// A point-in-time copy of the cache-wide counters.
    pub fn stats(&self) -> FragmentCacheStats {
        let inner = lock_unpoisoned(&self.inner);
        FragmentCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            coalesced: self.coalesced.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            entries: inner.entries.len() as u64,
            bytes: inner.cur_bytes,
            budget: inner.budget,
        }
    }

    /// Per-source hit/miss/invalidation counters (zeroes for a source
    /// the cache has never seen) — what `explain_analyze()`'s per-source
    /// table reads for its hits column.
    pub fn source_stats(&self, source: &str) -> SourceCacheStats {
        lock_unpoisoned(&self.inner).per_source.get(source).copied().unwrap_or_default()
    }

    /// Register the cache's counter/gauge *cells* in `registry` under
    /// `mix_fragcache_*` series, so metrics snapshots and Prometheus
    /// scrapes see live cache effectiveness. Binding into several
    /// registries is fine — they all read the same storage.
    pub fn bind_into(&self, registry: &MetricsRegistry) {
        registry.bind_counter(
            "mix_fragcache_hits_total",
            "Fill lookups answered from the shared fragment cache",
            &[],
            &self.hits,
        );
        registry.bind_counter(
            "mix_fragcache_misses_total",
            "Fill lookups that missed the shared fragment cache",
            &[],
            &self.misses,
        );
        registry.bind_counter(
            "mix_fragcache_insertions_total",
            "Replies admitted into the shared fragment cache",
            &[],
            &self.insertions,
        );
        registry.bind_counter(
            "mix_fragcache_coalesced_total",
            "Racing inserts coalesced onto an already-resident same-epoch entry",
            &[],
            &self.coalesced,
        );
        registry.bind_counter(
            "mix_fragcache_evictions_total",
            "Entries evicted from the shared fragment cache by byte pressure",
            &[],
            &self.evictions,
        );
        registry.bind_counter(
            "mix_fragcache_invalidations_total",
            "Source-level invalidations (epoch bumps) of the shared fragment cache",
            &[],
            &self.invalidations,
        );
        registry.bind_gauge(
            "mix_fragcache_bytes",
            "Wire bytes resident in the shared fragment cache",
            &[],
            &self.bytes,
        );
        registry.bind_gauge(
            "mix_fragcache_entries",
            "Entries resident in the shared fragment cache",
            &[],
            &self.entries,
        );
    }

    fn sync_gauges(&self) {
        let inner = lock_unpoisoned(&self.inner);
        self.bytes.set(inner.cur_bytes);
        self.entries.set(inner.entries.len() as u64);
    }
}

/// Is `MIX_CACHE_FORCE=1` set? When forced, every default-constructed
/// [`BufferNavigator`](crate::buffer::BufferNavigator) attaches a fresh
/// *private* fragment cache, so the whole test suite exercises the cache
/// code paths. The forced cache is deliberately per-navigator — a
/// process-global one would alias documents that happen to share a uri
/// across unrelated tests.
pub(crate) fn cache_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("MIX_CACHE_FORCE").map(|v| v == "1").unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_xml::Label;

    fn frag(label: &str, holes: usize) -> Arc<Vec<Fragment>> {
        Arc::new(vec![Fragment::Node {
            label: Label::new(label),
            children: (0..holes).map(|i| Fragment::Hole(format!("h{i}"))).collect(),
        }])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = FragmentCache::new();
        assert_eq!(c.lookup("s", &"a".to_string()), None);
        c.insert("s", &"a".to_string(), &frag("x", 2));
        assert_eq!(c.lookup("s", &"a".to_string()), Some(frag("x", 2)));
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.insertions), (1, 1, 1));
        assert_eq!(c.source_stats("s").hits, 1);
        assert_eq!(c.source_stats("s").misses, 1);
    }

    #[test]
    fn hits_share_the_cached_allocation() {
        // The satellite fix this PR pins down: a cache hit must NOT deep-
        // clone the fragments — every handle points at the same `Vec`.
        let c = FragmentCache::new();
        let original = frag("x", 3);
        c.insert("s", &"a".to_string(), &original);
        let hit1 = c.lookup("s", &"a".to_string()).unwrap();
        let hit2 = c.lookup("s", &"a".to_string()).unwrap();
        assert!(Arc::ptr_eq(&original, &hit1), "hit shares the inserted allocation");
        assert!(Arc::ptr_eq(&hit1, &hit2), "repeated hits share it too");
    }

    #[test]
    fn keys_are_per_source() {
        let c = FragmentCache::new();
        c.insert("s1", &"a".to_string(), &frag("x", 0));
        assert_eq!(c.lookup("s2", &"a".to_string()), None);
        assert!(c.lookup("s1", &"a".to_string()).is_some());
    }

    #[test]
    fn lru_eviction_under_byte_pressure() {
        let one = frag("x", 0);
        let bytes: u64 = one.iter().map(|f| f.wire_bytes() as u64).sum();
        let c = FragmentCache::with_budget(bytes * 2);
        c.insert("s", &"a".to_string(), &one);
        c.insert("s", &"b".to_string(), &one);
        // Touch `a` so `b` is the LRU victim.
        assert!(c.lookup("s", &"a".to_string()).is_some());
        let evicted = c.insert("s", &"c".to_string(), &one);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].1, "b");
        assert!(c.lookup("s", &"a".to_string()).is_some());
        assert_eq!(c.lookup("s", &"b".to_string()), None);
        assert!(c.lookup("s", &"c".to_string()).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.resident_bytes() <= c.budget());
    }

    #[test]
    fn oversize_entries_are_not_admitted() {
        let c = FragmentCache::with_budget(1);
        assert!(c.insert("s", &"a".to_string(), &frag("x", 0)).is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.lookup("s", &"a".to_string()), None);
    }

    #[test]
    fn invalidate_purges_and_outlives_epoch() {
        let c = FragmentCache::new();
        c.insert("s", &"a".to_string(), &frag("x", 1));
        c.insert_root("s", &"root".to_string());
        c.insert("t", &"a".to_string(), &frag("y", 0));
        let (entries, bytes) = c.invalidate("s");
        assert_eq!(entries, 2); // fragment entry + root entry
        assert!(bytes > 0);
        assert_eq!(c.lookup("s", &"a".to_string()), None);
        assert_eq!(c.lookup_root("s"), None);
        // The other source is untouched.
        assert!(c.lookup("t", &"a".to_string()).is_some());
        assert_eq!(c.source_stats("s").invalidations, 1);
        // Re-admission after invalidation works (new epoch).
        c.insert("s", &"a".to_string(), &frag("x", 1));
        assert!(c.lookup("s", &"a".to_string()).is_some());
    }

    #[test]
    fn root_cache_round_trips() {
        let c = FragmentCache::new();
        assert_eq!(c.lookup_root("s"), None);
        c.insert_root("s", &"uri|root".to_string());
        assert_eq!(c.lookup_root("s"), Some("uri|root".to_string()));
    }

    #[test]
    fn metrics_binding_reads_live_cells() {
        let c = FragmentCache::new();
        let reg = MetricsRegistry::enabled();
        c.bind_into(&reg);
        c.insert("s", &"a".to_string(), &frag("x", 0));
        c.lookup("s", &"a".to_string());
        c.lookup("s", &"b".to_string());
        let snap = reg.snapshot();
        assert_eq!(snap.value("mix_fragcache_hits_total", &[]), Some(1));
        assert_eq!(snap.value("mix_fragcache_misses_total", &[]), Some(1));
        assert_eq!(snap.value("mix_fragcache_insertions_total", &[]), Some(1));
        assert_eq!(snap.value("mix_fragcache_entries", &[]), Some(1));
        assert!(snap.value("mix_fragcache_bytes", &[]).unwrap() > 0);
    }

    #[test]
    fn clear_bumps_epochs() {
        let c = FragmentCache::new();
        c.insert("s", &"a".to_string(), &frag("x", 0));
        c.insert_root("s", &"r".to_string());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.lookup_root("s"), None);
    }
}
