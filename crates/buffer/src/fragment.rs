//! Open trees and XML fragments (paper Defs. 3–4, Example 6).
//!
//! An element of the form `hole[id]` is a *hole*; a tree containing holes
//! is *open* (partial), otherwise *closed* (complete). A hole represents
//! **zero or more** unexplored sibling elements, so the number of items in
//! an open list generally differs from the length of the complete list it
//! represents.

use crate::lxp::HoleId;
use mix_xml::{Label, Tree};
use std::fmt;

/// One fragment of an open tree: a node (with possibly-open children) or a
/// hole standing for zero or more unexplored siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fragment {
    /// An element with label and (open) child list.
    Node { label: Label, children: Vec<Fragment> },
    /// `hole[id]` — unexplored siblings.
    Hole(HoleId),
}

impl Fragment {
    /// A leaf node.
    pub fn leaf(label: impl Into<Label>) -> Self {
        Fragment::Node { label: label.into(), children: Vec::new() }
    }

    /// A node with children.
    pub fn node(label: impl Into<Label>, children: Vec<Fragment>) -> Self {
        Fragment::Node { label: label.into(), children }
    }

    /// A hole.
    pub fn hole(id: impl Into<HoleId>) -> Self {
        Fragment::Hole(id.into())
    }

    /// True when this fragment is a hole.
    pub fn is_hole(&self) -> bool {
        matches!(self, Fragment::Hole(_))
    }

    /// Convert a complete tree into a (closed) fragment.
    pub fn from_tree(t: &Tree) -> Self {
        Fragment::Node {
            label: t.label().clone(),
            children: t.children().iter().map(Fragment::from_tree).collect(),
        }
    }

    /// Convert back to a tree; fails (returns `None`) if any hole remains.
    pub fn to_tree(&self) -> Option<Tree> {
        match self {
            Fragment::Hole(_) => None,
            Fragment::Node { label, children } => {
                let mut out = Vec::with_capacity(children.len());
                for c in children {
                    out.push(c.to_tree()?);
                }
                Some(Tree::node(label.clone(), out))
            }
        }
    }

    /// True when the fragment contains no holes anywhere.
    pub fn is_closed(&self) -> bool {
        match self {
            Fragment::Hole(_) => false,
            Fragment::Node { children, .. } => children.iter().all(Fragment::is_closed),
        }
    }

    /// Number of (non-hole) nodes — the cost model's unit for fragment
    /// volume.
    pub fn node_count(&self) -> usize {
        match self {
            Fragment::Hole(_) => 0,
            Fragment::Node { children, .. } => {
                1 + children.iter().map(Fragment::node_count).sum::<usize>()
            }
        }
    }

    /// Approximate wire size in bytes: label bytes plus a small framing
    /// constant per node or hole. Used by the granularity experiments to
    /// compare protocols.
    pub fn wire_bytes(&self) -> usize {
        const FRAME: usize = 8;
        match self {
            Fragment::Hole(id) => FRAME + id.len(),
            Fragment::Node { label, children } => {
                FRAME + label.len() + children.iter().map(Fragment::wire_bytes).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Fragment {
    /// Term-like syntax with `◦id` for holes, as in the paper's Example 6
    /// (`r[◦3,b,c,◦4]`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fragment::Hole(id) => write!(f, "◦{id}"),
            Fragment::Node { label, children } => {
                write!(f, "{label}")?;
                if !children.is_empty() {
                    write!(f, "[")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

/// Does the open child list `open` *represent* the complete child list
/// `complete` (Def. 4)? Each hole may be substituted by zero or more
/// consecutive elements; non-hole fragments must match recursively in
/// order.
pub fn represents(open: &[Fragment], complete: &[Tree]) -> bool {
    // Backtracking match: holes are `.*` over sibling lists.
    fn go(open: &[Fragment], complete: &[Tree]) -> bool {
        match open.first() {
            None => complete.is_empty(),
            Some(Fragment::Hole(_)) => {
                // Try consuming 0..=len elements.
                (0..=complete.len()).any(|k| go(&open[1..], &complete[k..]))
            }
            Some(Fragment::Node { label, children }) => match complete.first() {
                Some(t) if t.label() == label && go(children, t.children()) => {
                    go(&open[1..], &complete[1..])
                }
                _ => false,
            },
        }
    }
    go(open, complete)
}

/// Does a single open tree represent a complete tree?
pub fn tree_represents(open: &Fragment, complete: &Tree) -> bool {
    match open {
        Fragment::Hole(_) => true, // a hole can stand for any single element (or more)
        Fragment::Node { label, children } => {
            label == complete.label() && represents(children, complete.children())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_xml::term::parse_term;

    fn t(s: &str) -> Tree {
        parse_term(s).unwrap()
    }

    #[test]
    fn example_6_possible_open_trees() {
        // "Consider the complete tree t = r[a,b,c]. Possible open trees t′
        //  for t are, e.g., r[◦1], r[a,◦2], and r[◦3,b,c,◦4]."
        let complete = t("r[a,b,c]");
        let r1 = Fragment::node("r", vec![Fragment::hole("1")]);
        let r2 = Fragment::node("r", vec![Fragment::leaf("a"), Fragment::hole("2")]);
        let r3 = Fragment::node(
            "r",
            vec![
                Fragment::hole("3"),
                Fragment::leaf("b"),
                Fragment::leaf("c"),
                Fragment::hole("4"),
            ],
        );
        assert!(tree_represents(&r1, &complete));
        assert!(tree_represents(&r2, &complete));
        assert!(tree_represents(&r3, &complete));
        // ◦3 represents [a], ◦4 represents [] — both "zero or more".
    }

    #[test]
    fn representation_respects_order_and_labels() {
        let complete = t("r[a,b,c]");
        // Wrong order.
        let bad = Fragment::node("r", vec![Fragment::leaf("b"), Fragment::hole("1")]);
        assert!(!tree_represents(&bad, &complete));
        // Wrong root label.
        let bad2 = Fragment::node("x", vec![Fragment::hole("1")]);
        assert!(!tree_represents(&bad2, &complete));
        // Fragment with more elements than the complete list.
        let bad3 = Fragment::node(
            "r",
            vec![
                Fragment::leaf("a"),
                Fragment::leaf("b"),
                Fragment::leaf("c"),
                Fragment::leaf("d"),
            ],
        );
        assert!(!tree_represents(&bad3, &complete));
    }

    #[test]
    fn nested_holes() {
        let complete = t("a[b[d,e],c]");
        let open = Fragment::node(
            "a",
            vec![Fragment::node("b", vec![Fragment::hole("2")]), Fragment::hole("3")],
        );
        assert!(tree_represents(&open, &complete));
    }

    #[test]
    fn closed_fragment_roundtrip() {
        let tree = t("a[b[d,e],c]");
        let frag = Fragment::from_tree(&tree);
        assert!(frag.is_closed());
        assert_eq!(frag.to_tree().unwrap(), tree);
        assert_eq!(frag.node_count(), 5);
    }

    #[test]
    fn open_fragment_has_no_tree() {
        let open = Fragment::node("a", vec![Fragment::hole("1")]);
        assert!(!open.is_closed());
        assert!(open.to_tree().is_none());
        assert_eq!(open.node_count(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let open = Fragment::node(
            "r",
            vec![Fragment::hole("3"), Fragment::leaf("b"), Fragment::leaf("c"), Fragment::hole("4")],
        );
        assert_eq!(open.to_string(), "r[◦3,b,c,◦4]");
    }

    #[test]
    fn wire_bytes_grow_with_content() {
        let small = Fragment::leaf("a");
        let big = Fragment::from_tree(&t("row[att1[v1],att2[v2],att3[v3]]"));
        assert!(big.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn empty_hole_represents_empty_list() {
        assert!(represents(&[Fragment::hole("x")], &[]));
        assert!(represents(&[], &[]));
        assert!(!represents(&[], &[t("a")]));
    }
}
