//! Open trees and XML fragments (paper Defs. 3–4, Example 6).
//!
//! An element of the form `hole[id]` is a *hole*; a tree containing holes
//! is *open* (partial), otherwise *closed* (complete). A hole represents
//! **zero or more** unexplored sibling elements, so the number of items in
//! an open list generally differs from the length of the complete list it
//! represents.

use crate::lxp::HoleId;
use mix_xml::{Label, Tree};
use std::fmt;

/// One fragment of an open tree: a node (with possibly-open children) or a
/// hole standing for zero or more unexplored siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fragment {
    /// An element with label and (open) child list.
    Node { label: Label, children: Vec<Fragment> },
    /// `hole[id]` — unexplored siblings.
    Hole(HoleId),
}

impl Fragment {
    /// A leaf node.
    pub fn leaf(label: impl Into<Label>) -> Self {
        Fragment::Node { label: label.into(), children: Vec::new() }
    }

    /// A node with children.
    pub fn node(label: impl Into<Label>, children: Vec<Fragment>) -> Self {
        Fragment::Node { label: label.into(), children }
    }

    /// A hole.
    pub fn hole(id: impl Into<HoleId>) -> Self {
        Fragment::Hole(id.into())
    }

    /// True when this fragment is a hole.
    pub fn is_hole(&self) -> bool {
        matches!(self, Fragment::Hole(_))
    }

    /// Convert a complete tree into a (closed) fragment.
    pub fn from_tree(t: &Tree) -> Self {
        Fragment::Node {
            label: t.label().clone(),
            children: t.children().iter().map(Fragment::from_tree).collect(),
        }
    }

    /// Convert back to a tree; fails (returns `None`) if any hole remains.
    pub fn to_tree(&self) -> Option<Tree> {
        match self {
            Fragment::Hole(_) => None,
            Fragment::Node { label, children } => {
                let mut out = Vec::with_capacity(children.len());
                for c in children {
                    out.push(c.to_tree()?);
                }
                Some(Tree::node(label.clone(), out))
            }
        }
    }

    /// True when the fragment contains no holes anywhere.
    pub fn is_closed(&self) -> bool {
        match self {
            Fragment::Hole(_) => false,
            Fragment::Node { children, .. } => children.iter().all(Fragment::is_closed),
        }
    }

    /// Number of (non-hole) nodes — the cost model's unit for fragment
    /// volume.
    pub fn node_count(&self) -> usize {
        match self {
            Fragment::Hole(_) => 0,
            Fragment::Node { children, .. } => {
                1 + children.iter().map(Fragment::node_count).sum::<usize>()
            }
        }
    }

    /// Approximate wire size in bytes: label bytes plus a small framing
    /// constant per node or hole. Used by the granularity experiments to
    /// compare protocols.
    pub fn wire_bytes(&self) -> usize {
        const FRAME: usize = 8;
        match self {
            Fragment::Hole(id) => FRAME + id.len(),
            Fragment::Node { label, children } => {
                FRAME + label.len() + children.iter().map(Fragment::wire_bytes).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Fragment {
    /// Term-like syntax with `◦id` for holes, as in the paper's Example 6
    /// (`r[◦3,b,c,◦4]`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fragment::Hole(id) => write!(f, "◦{id}"),
            Fragment::Node { label, children } => {
                write!(f, "{label}")?;
                if !children.is_empty() {
                    write!(f, "[")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

/// Stable identifier of a buffered node: an index into an [`OpenTree`]'s
/// node slab. Ids stay valid for the life of the tree, across any number
/// of splices — the paper's requirement that "an incoming navigation
/// command may involve any previously encountered pointer".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufNodeId(u32);

impl BufNodeId {
    /// The root of every open tree (the first node interned).
    pub const ROOT: BufNodeId = BufNodeId(0);

    /// Raw slab index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a hole record in an [`OpenTree`]'s hole slab. Only valid
/// while the hole is live (slots are recycled after a splice fills them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HoleSlot(u32);

impl HoleSlot {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One child-list entry of an open-tree node: a materialized child or a
/// live hole. Two words, `Copy` — child lists move with `memcpy`, not
/// per-entry clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEntry {
    /// A materialized child node.
    Node(BufNodeId),
    /// A live hole (unexplored siblings).
    Hole(HoleSlot),
}

const NONE: u32 = u32::MAX;

/// Padding entry for unused pool capacity; never read (lengths guard).
const PAD: TreeEntry = TreeEntry::Node(BufNodeId(NONE));

#[derive(Debug)]
struct NodeRec {
    label: Label,
    parent: Option<BufNodeId>,
    /// Position within the parent's child list; maintained across splices.
    idx: u32,
    /// Child range `[start, start+len)` in the entry pool, with `cap`
    /// reserved entries (bump-grown; an outgrown range is abandoned).
    start: u32,
    len: u32,
    cap: u32,
}

#[derive(Debug)]
struct HoleRec {
    id: HoleId,
    /// Document-order neighbours among live holes (`NONE` = list end).
    prev: u32,
    next: u32,
    live: bool,
}

/// An arena-allocated open tree (paper Def. 3).
///
/// Three flat stores replace per-node boxing:
///
/// - a **node slab** (`BufNodeId`-indexed; labels, parent links, child
///   ranges) — a leaf node is one slab record and *zero* heap
///   allocations of its own;
/// - a bump-style **child-entry pool** holding every node's child list
///   as a contiguous range. Splices that fit the reserved capacity move
///   entries in place; growth abandons the old range and bump-allocates
///   a geometrically larger one, so the repeated trailing-hole splice of
///   a scan is amortized O(1) per arriving child;
/// - a **hole slab** whose live records form a doubly-linked list in
///   document order. Enumerating the open tree's holes (the batched
///   fill path's per-exchange need) walks the list — O(live holes), not
///   O(tree) — and a splice replaces one hole's list position with the
///   reply's new holes in one O(new holes) relink.
///
/// All indices are stable: node ids never move, and pool ranges are only
/// ever abandoned, never compacted, while the tree lives.
#[derive(Debug, Default)]
pub struct OpenTree {
    nodes: Vec<NodeRec>,
    pool: Vec<TreeEntry>,
    holes: Vec<HoleRec>,
    free_holes: Vec<u32>,
    /// Head/tail of the live-hole list in document order.
    head: u32,
    tail: u32,
    live_holes: usize,
}

impl OpenTree {
    /// An empty tree (no nodes, no holes).
    pub fn new() -> Self {
        OpenTree {
            nodes: Vec::new(),
            pool: Vec::new(),
            holes: Vec::new(),
            free_holes: Vec::new(),
            head: NONE,
            tail: NONE,
            live_holes: 0,
        }
    }

    /// Number of materialized nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live holes.
    pub fn live_holes(&self) -> usize {
        self.live_holes
    }

    /// Is `id` a materialized node of this tree?
    pub fn contains(&self, id: BufNodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Allocate a node record with an empty child list. Returns `None`
    /// when the slab outgrows its 32-bit id space.
    pub fn alloc_node(
        &mut self,
        label: Label,
        parent: Option<BufNodeId>,
        idx: usize,
    ) -> Option<BufNodeId> {
        let id = u32::try_from(self.nodes.len()).ok().filter(|&n| n != NONE)?;
        let idx = u32::try_from(idx).ok()?;
        self.nodes.push(NodeRec { label, parent, idx, start: 0, len: 0, cap: 0 });
        Some(BufNodeId(id))
    }

    /// Reserve an exact-capacity child range for `node` (which must not
    /// have children yet). Entries start as padding; the caller fills
    /// them with [`OpenTree::set_child`]. Returns `false` on pool
    /// overflow (4G entries).
    pub fn reserve_children(&mut self, node: BufNodeId, n: usize) -> bool {
        debug_assert_eq!(self.nodes[node.index()].len, 0, "children already reserved");
        if n == 0 {
            return true;
        }
        let Ok(start) = u32::try_from(self.pool.len()) else { return false };
        let Ok(n32) = u32::try_from(n) else { return false };
        if start.checked_add(n32).is_none() {
            return false;
        }
        self.pool.resize(self.pool.len() + n, PAD);
        let rec = &mut self.nodes[node.index()];
        rec.start = start;
        rec.len = n32;
        rec.cap = n32;
        true
    }

    /// Write child `i` of `node` (within the reserved range).
    pub fn set_child(&mut self, node: BufNodeId, i: usize, e: TreeEntry) {
        let rec = &self.nodes[node.index()];
        debug_assert!(i < rec.len as usize);
        self.pool[rec.start as usize + i] = e;
    }

    /// Child `i` of `node`, if it exists.
    pub fn child(&self, node: BufNodeId, i: usize) -> Option<TreeEntry> {
        let rec = &self.nodes[node.index()];
        (i < rec.len as usize).then(|| self.pool[rec.start as usize + i])
    }

    /// The child list of `node`.
    pub fn children(&self, node: BufNodeId) -> &[TreeEntry] {
        let rec = &self.nodes[node.index()];
        &self.pool[rec.start as usize..(rec.start + rec.len) as usize]
    }

    /// The label of `node`.
    pub fn label(&self, node: BufNodeId) -> &Label {
        &self.nodes[node.index()].label
    }

    /// The parent of `node`.
    pub fn parent(&self, node: BufNodeId) -> Option<BufNodeId> {
        self.nodes[node.index()].parent
    }

    /// `node`'s position within its parent's child list.
    pub fn idx(&self, node: BufNodeId) -> usize {
        self.nodes[node.index()].idx as usize
    }

    /// Replace the entry at child position `i` of `parent` with
    /// `replacement`, shifting the suffix and fixing the cached `idx` of
    /// shifted materialized siblings. In-place when the reserved
    /// capacity suffices; otherwise the range is abandoned and a
    /// geometrically larger one is bump-allocated. Returns `false` on
    /// pool overflow.
    pub fn splice_children(
        &mut self,
        parent: BufNodeId,
        i: usize,
        replacement: &[TreeEntry],
    ) -> bool {
        let rec = &self.nodes[parent.index()];
        let (start, len, cap) = (rec.start as usize, rec.len as usize, rec.cap as usize);
        debug_assert!(i < len, "splice target must exist");
        let r = replacement.len();
        let new_len = len - 1 + r;
        if new_len <= cap {
            self.pool.copy_within(start + i + 1..start + len, start + i + r);
            self.pool[start + i..start + i + r].copy_from_slice(replacement);
            let rec = &mut self.nodes[parent.index()];
            rec.len = new_len as u32;
        } else {
            // Outgrown: abandon the old range, bump-allocate a larger
            // one. Doubling keeps the scan's repeated trailing-hole
            // splice amortized O(1) and bounds abandoned garbage by the
            // live pool size.
            let new_cap = new_len.max(cap.saturating_mul(2));
            let Ok(new_start) = u32::try_from(self.pool.len()) else { return false };
            if u32::try_from(new_cap).is_err()
                || new_start.checked_add(new_cap as u32).is_none()
            {
                return false;
            }
            self.pool.reserve(new_cap);
            self.pool.extend_from_within(start..start + i);
            self.pool.extend_from_slice(replacement);
            self.pool.extend_from_within(start + i + 1..start + len);
            self.pool.resize(new_start as usize + new_cap, PAD);
            let rec = &mut self.nodes[parent.index()];
            rec.start = new_start;
            rec.len = new_len as u32;
            rec.cap = new_cap as u32;
        }
        // Positions after the splice point shifted by r - 1.
        if r != 1 {
            let rec = &self.nodes[parent.index()];
            let start = rec.start as usize;
            for pos in i + r..new_len {
                if let TreeEntry::Node(id) = self.pool[start + pos] {
                    self.nodes[id.index()].idx = pos as u32;
                }
            }
        }
        true
    }

    /// Allocate a live hole record (recycling freed slots). The hole is
    /// not yet part of the document-order list — see
    /// [`OpenTree::relink_holes`].
    pub fn new_hole(&mut self, id: HoleId) -> HoleSlot {
        self.live_holes += 1;
        if let Some(slot) = self.free_holes.pop() {
            self.holes[slot as usize] = HoleRec { id, prev: NONE, next: NONE, live: true };
            return HoleSlot(slot);
        }
        let slot = u32::try_from(self.holes.len()).expect("hole slab overflow");
        self.holes.push(HoleRec { id, prev: NONE, next: NONE, live: true });
        HoleSlot(slot)
    }

    /// The wrapper hole id stored in `slot` (which must be live).
    pub fn hole_id(&self, slot: HoleSlot) -> &HoleId {
        debug_assert!(self.holes[slot.index()].live, "hole slot used after free");
        &self.holes[slot.index()].id
    }

    /// Replace `old` (if any) in the document-order hole list with the
    /// already-allocated slots of `seq`, in order, and free `old`. With
    /// `old == None` the sequence is appended at the tail (the initial
    /// root intern). This is the one incremental update that keeps the
    /// list equal to a DFS enumeration of the tree's holes: a splice
    /// confines its new holes to exactly the interval the old hole
    /// occupied.
    pub fn relink_holes(&mut self, old: Option<HoleSlot>, seq: &[HoleSlot]) {
        let (before, after) = match old {
            Some(h) => {
                let rec = &self.holes[h.index()];
                debug_assert!(rec.live, "relink of a freed hole");
                (rec.prev, rec.next)
            }
            None => (self.tail, NONE),
        };
        if let Some(h) = old {
            let rec = &mut self.holes[h.index()];
            rec.live = false;
            rec.id = HoleId::new();
            self.free_holes.push(h.0);
            self.live_holes -= 1;
        }
        let (first, last) = if seq.is_empty() {
            (after, before) // degenerate: just bridge before <-> after
        } else {
            for w in seq.windows(2) {
                self.holes[w[0].index()].next = w[1].0;
                self.holes[w[1].index()].prev = w[0].0;
            }
            self.holes[seq[0].index()].prev = before;
            self.holes[seq[seq.len() - 1].index()].next = after;
            (seq[0].0, seq[seq.len() - 1].0)
        };
        if seq.is_empty() {
            if before != NONE {
                self.holes[before as usize].next = after;
            } else {
                self.head = after;
            }
            if after != NONE {
                self.holes[after as usize].prev = before;
            } else {
                self.tail = before;
            }
            let _ = (first, last);
        } else {
            if before != NONE {
                self.holes[before as usize].next = first;
            } else {
                self.head = first;
            }
            if after != NONE {
                self.holes[after as usize].prev = last;
            } else {
                self.tail = last;
            }
        }
    }

    /// The live holes in document order.
    pub fn holes_in_order(&self) -> HoleOrderIter<'_> {
        HoleOrderIter { tree: self, next: self.head }
    }

    /// Render the subtree under `id` in the paper's `r[a,◦2]` notation.
    pub fn fragment_of(&self, id: BufNodeId) -> Fragment {
        Fragment::Node {
            label: self.label(id).clone(),
            children: self
                .children(id)
                .iter()
                .map(|e| match e {
                    TreeEntry::Node(c) => self.fragment_of(*c),
                    TreeEntry::Hole(h) => Fragment::Hole(self.hole_id(*h).clone()),
                })
                .collect(),
        }
    }
}

/// Iterator over an [`OpenTree`]'s live holes in document order.
pub struct HoleOrderIter<'a> {
    tree: &'a OpenTree,
    next: u32,
}

impl<'a> Iterator for HoleOrderIter<'a> {
    type Item = &'a HoleId;

    fn next(&mut self) -> Option<&'a HoleId> {
        if self.next == NONE {
            return None;
        }
        let rec = &self.tree.holes[self.next as usize];
        self.next = rec.next;
        Some(&rec.id)
    }
}

/// Does the open child list `open` *represent* the complete child list
/// `complete` (Def. 4)? Each hole may be substituted by zero or more
/// consecutive elements; non-hole fragments must match recursively in
/// order.
pub fn represents(open: &[Fragment], complete: &[Tree]) -> bool {
    // Backtracking match: holes are `.*` over sibling lists.
    fn go(open: &[Fragment], complete: &[Tree]) -> bool {
        match open.first() {
            None => complete.is_empty(),
            Some(Fragment::Hole(_)) => {
                // Try consuming 0..=len elements.
                (0..=complete.len()).any(|k| go(&open[1..], &complete[k..]))
            }
            Some(Fragment::Node { label, children }) => match complete.first() {
                Some(t) if t.label() == label && go(children, t.children()) => {
                    go(&open[1..], &complete[1..])
                }
                _ => false,
            },
        }
    }
    go(open, complete)
}

/// Does a single open tree represent a complete tree?
pub fn tree_represents(open: &Fragment, complete: &Tree) -> bool {
    match open {
        Fragment::Hole(_) => true, // a hole can stand for any single element (or more)
        Fragment::Node { label, children } => {
            label == complete.label() && represents(children, complete.children())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mix_xml::term::parse_term;

    fn t(s: &str) -> Tree {
        parse_term(s).unwrap()
    }

    #[test]
    fn example_6_possible_open_trees() {
        // "Consider the complete tree t = r[a,b,c]. Possible open trees t′
        //  for t are, e.g., r[◦1], r[a,◦2], and r[◦3,b,c,◦4]."
        let complete = t("r[a,b,c]");
        let r1 = Fragment::node("r", vec![Fragment::hole("1")]);
        let r2 = Fragment::node("r", vec![Fragment::leaf("a"), Fragment::hole("2")]);
        let r3 = Fragment::node(
            "r",
            vec![
                Fragment::hole("3"),
                Fragment::leaf("b"),
                Fragment::leaf("c"),
                Fragment::hole("4"),
            ],
        );
        assert!(tree_represents(&r1, &complete));
        assert!(tree_represents(&r2, &complete));
        assert!(tree_represents(&r3, &complete));
        // ◦3 represents [a], ◦4 represents [] — both "zero or more".
    }

    #[test]
    fn representation_respects_order_and_labels() {
        let complete = t("r[a,b,c]");
        // Wrong order.
        let bad = Fragment::node("r", vec![Fragment::leaf("b"), Fragment::hole("1")]);
        assert!(!tree_represents(&bad, &complete));
        // Wrong root label.
        let bad2 = Fragment::node("x", vec![Fragment::hole("1")]);
        assert!(!tree_represents(&bad2, &complete));
        // Fragment with more elements than the complete list.
        let bad3 = Fragment::node(
            "r",
            vec![
                Fragment::leaf("a"),
                Fragment::leaf("b"),
                Fragment::leaf("c"),
                Fragment::leaf("d"),
            ],
        );
        assert!(!tree_represents(&bad3, &complete));
    }

    #[test]
    fn nested_holes() {
        let complete = t("a[b[d,e],c]");
        let open = Fragment::node(
            "a",
            vec![Fragment::node("b", vec![Fragment::hole("2")]), Fragment::hole("3")],
        );
        assert!(tree_represents(&open, &complete));
    }

    #[test]
    fn closed_fragment_roundtrip() {
        let tree = t("a[b[d,e],c]");
        let frag = Fragment::from_tree(&tree);
        assert!(frag.is_closed());
        assert_eq!(frag.to_tree().unwrap(), tree);
        assert_eq!(frag.node_count(), 5);
    }

    #[test]
    fn open_fragment_has_no_tree() {
        let open = Fragment::node("a", vec![Fragment::hole("1")]);
        assert!(!open.is_closed());
        assert!(open.to_tree().is_none());
        assert_eq!(open.node_count(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let open = Fragment::node(
            "r",
            vec![Fragment::hole("3"), Fragment::leaf("b"), Fragment::leaf("c"), Fragment::hole("4")],
        );
        assert_eq!(open.to_string(), "r[◦3,b,c,◦4]");
    }

    #[test]
    fn wire_bytes_grow_with_content() {
        let small = Fragment::leaf("a");
        let big = Fragment::from_tree(&t("row[att1[v1],att2[v2],att3[v3]]"));
        assert!(big.wire_bytes() > small.wire_bytes());
    }

    #[test]
    fn empty_hole_represents_empty_list() {
        assert!(represents(&[Fragment::hole("x")], &[]));
        assert!(represents(&[], &[]));
        assert!(!represents(&[], &[t("a")]));
    }

    // ---- OpenTree arena -------------------------------------------------

    /// `r[a, ◦1, b]` with the hole registered in the order list.
    fn small_tree() -> (OpenTree, BufNodeId, HoleSlot) {
        let mut t = OpenTree::new();
        let r = t.alloc_node(Label::new("r"), None, 0).unwrap();
        assert!(t.reserve_children(r, 3));
        let a = t.alloc_node(Label::new("a"), Some(r), 0).unwrap();
        let h = t.new_hole("1".to_string());
        let b = t.alloc_node(Label::new("b"), Some(r), 2).unwrap();
        t.set_child(r, 0, TreeEntry::Node(a));
        t.set_child(r, 1, TreeEntry::Hole(h));
        t.set_child(r, 2, TreeEntry::Node(b));
        t.relink_holes(None, &[h]);
        (t, r, h)
    }

    #[test]
    fn arena_renders_the_paper_notation() {
        let (t, r, _) = small_tree();
        assert_eq!(t.fragment_of(r).to_string(), "r[a,◦1,b]");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.live_holes(), 1);
    }

    #[test]
    fn splice_fixes_sibling_indices_and_hole_list() {
        let (mut t, r, h) = small_tree();
        // Fill ◦1 with [x, ◦2, ◦3]: b shifts from idx 2 to idx 4.
        let x = t.alloc_node(Label::new("x"), Some(r), 1).unwrap();
        let h2 = t.new_hole("2".to_string());
        let h3 = t.new_hole("3".to_string());
        assert!(t.splice_children(
            r,
            1,
            &[TreeEntry::Node(x), TreeEntry::Hole(h2), TreeEntry::Hole(h3)]
        ));
        t.relink_holes(Some(h), &[h2, h3]);
        assert_eq!(t.fragment_of(r).to_string(), "r[a,x,◦2,◦3,b]");
        let b = match t.child(r, 4).unwrap() {
            TreeEntry::Node(id) => id,
            e => panic!("expected b, got {e:?}"),
        };
        assert_eq!(t.label(b).as_str(), "b");
        assert_eq!(t.idx(b), 4, "shifted sibling's cached idx is fixed");
        let order: Vec<&str> = t.holes_in_order().map(|h| h.as_str()).collect();
        assert_eq!(order, ["2", "3"], "reply holes take the old hole's position");
        assert_eq!(t.live_holes(), 2);
    }

    #[test]
    fn empty_splice_removes_the_hole_and_bridges_the_list() {
        let mut t = OpenTree::new();
        let r = t.alloc_node(Label::new("r"), None, 0).unwrap();
        assert!(t.reserve_children(r, 3));
        let h1 = t.new_hole("1".to_string());
        let h2 = t.new_hole("2".to_string());
        let h3 = t.new_hole("3".to_string());
        t.set_child(r, 0, TreeEntry::Hole(h1));
        t.set_child(r, 1, TreeEntry::Hole(h2));
        t.set_child(r, 2, TreeEntry::Hole(h3));
        t.relink_holes(None, &[h1, h2, h3]);
        // Middle hole evaporates (empty reply).
        assert!(t.splice_children(r, 1, &[]));
        t.relink_holes(Some(h2), &[]);
        assert_eq!(t.fragment_of(r).to_string(), "r[◦1,◦3]");
        let order: Vec<&str> = t.holes_in_order().map(|h| h.as_str()).collect();
        assert_eq!(order, ["1", "3"], "neighbours bridge over the freed slot");
        // Freed slots are recycled.
        let h4 = t.new_hole("4".to_string());
        assert_eq!(h4, h2, "slab slot reused");
        assert_eq!(t.live_holes(), 3);
    }

    #[test]
    fn growing_splices_stay_consistent_across_reallocation() {
        // Repeated trailing-hole splices (the scan pattern) force the
        // child range to outgrow its capacity several times; entries,
        // indices, and the hole list must survive every bump-realloc.
        let mut t = OpenTree::new();
        let r = t.alloc_node(Label::new("r"), None, 0).unwrap();
        assert!(t.reserve_children(r, 1));
        let mut hole = t.new_hole("h0".to_string());
        t.set_child(r, 0, TreeEntry::Hole(hole));
        t.relink_holes(None, &[hole]);
        for k in 0..50 {
            let i = t.children(r).len() - 1; // trailing hole position
            let c = t.alloc_node(Label::new(format!("c{k}")), Some(r), i).unwrap();
            let next = t.new_hole(format!("h{}", k + 1));
            assert!(t.splice_children(r, i, &[TreeEntry::Node(c), TreeEntry::Hole(next)]));
            t.relink_holes(Some(hole), &[next]);
            hole = next;
        }
        let kids = t.children(r);
        assert_eq!(kids.len(), 51);
        for (i, e) in kids.iter().enumerate().take(50) {
            let TreeEntry::Node(id) = e else { panic!("child {i} is a node") };
            assert_eq!(t.idx(*id), i);
            assert_eq!(t.label(*id).as_str(), format!("c{i}"));
        }
        let order: Vec<&str> = t.holes_in_order().map(|h| h.as_str()).collect();
        assert_eq!(order, ["h50"], "one live hole at the frontier");
        assert_eq!(t.live_holes(), 1);
    }

    #[test]
    fn leaf_nodes_reserve_no_pool_space() {
        let mut t = OpenTree::new();
        let r = t.alloc_node(Label::new("leaf"), None, 0).unwrap();
        assert!(t.reserve_children(r, 0));
        assert_eq!(t.children(r).len(), 0);
        assert_eq!(t.fragment_of(r).to_string(), "leaf");
    }
}
