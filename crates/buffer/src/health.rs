//! Queryable health of one buffer–wrapper conversation.
//!
//! The paper's setting is live web sources (§1: "one cannot obtain the
//! complete dataset of the booksellers") — sources that time out, drop
//! connections, and come back. [`SourceHealth`] is the buffer's account of
//! that weather: transient faults absorbed by retries, simulated backoff
//! cost paid for them, and operations that had to *degrade* (navigation
//! answered `None` because the source stayed down or broke the protocol).
//!
//! The handle is cheap to clone and shared — the same `Arc`-of-atomics
//! idiom as [`BufferStats`](crate::BufferStats) — so the engine, profiler,
//! and client library can all observe the conversation the buffer is
//! having without owning the buffer.

use crate::pool::lock_unpoisoned;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Coarse classification of a source's current condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No faults observed, or every fault was retried away.
    Healthy,
    /// At least one operation gave up and degraded (partial answers are
    /// possible), but the circuit is still closed: the buffer keeps
    /// trying.
    Degraded,
    /// The circuit breaker is open: the source failed persistently and
    /// the buffer no longer sends it traffic.
    Unavailable,
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthStatus::Healthy => write!(f, "healthy"),
            HealthStatus::Degraded => write!(f, "degraded"),
            HealthStatus::Unavailable => write!(f, "unavailable"),
        }
    }
}

/// A point-in-time copy of [`SourceHealth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Current condition.
    pub status: HealthStatus,
    /// Transient wrapper errors observed (each preceded a retry or a
    /// give-up).
    pub transient_faults: u64,
    /// Retry attempts issued after a transient fault.
    pub retries: u64,
    /// Simulated cost units spent backing off between attempts (same
    /// currency as the web wrapper's `simulated_cost`).
    pub backoff_cost: u64,
    /// Operations that exhausted retries or hit a permanent error and
    /// degraded to a partial answer.
    pub degraded_ops: u64,
    /// Speculative readahead fills that failed (best-effort, off the
    /// critical path — the client's own fill faces the error itself, so
    /// these do not degrade the answer, but they are weather worth
    /// seeing).
    pub prefetch_failures: u64,
    /// The most recent error, rendered.
    pub last_error: Option<String>,
}

impl HealthSnapshot {
    /// True when nothing ever went wrong *and* nothing was even retried.
    pub fn is_pristine(&self) -> bool {
        self.status == HealthStatus::Healthy && self.transient_faults == 0
    }
}

#[derive(Default, Debug)]
struct HealthCells {
    transient_faults: AtomicU64,
    retries: AtomicU64,
    backoff_cost: AtomicU64,
    degraded_ops: AtomicU64,
    prefetch_failures: AtomicU64,
    breaker_open: AtomicBool,
    last_error: Mutex<Option<String>>,
}

/// Shared, cloneable handle to one source's fault/retry counters.
#[derive(Clone, Default, Debug)]
pub struct SourceHealth {
    inner: Arc<HealthCells>,
}

impl SourceHealth {
    /// Fresh, healthy state.
    pub fn new() -> Self {
        SourceHealth::default()
    }

    /// Read the current state.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            status: self.status(),
            transient_faults: self.inner.transient_faults.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            backoff_cost: self.inner.backoff_cost.load(Ordering::Relaxed),
            degraded_ops: self.inner.degraded_ops.load(Ordering::Relaxed),
            prefetch_failures: self.inner.prefetch_failures.load(Ordering::Relaxed),
            last_error: lock_unpoisoned(&self.inner.last_error).clone(),
        }
    }

    /// Current condition.
    pub fn status(&self) -> HealthStatus {
        if self.inner.breaker_open.load(Ordering::Relaxed) {
            HealthStatus::Unavailable
        } else if self.inner.degraded_ops.load(Ordering::Relaxed) > 0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }

    /// Record one transient fault plus the retry that answers it.
    pub fn record_retry(&self, error: &dyn fmt::Display, backoff_cost: u64) {
        self.inner.transient_faults.fetch_add(1, Ordering::Relaxed);
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
        self.inner.backoff_cost.fetch_add(backoff_cost, Ordering::Relaxed);
        *lock_unpoisoned(&self.inner.last_error) = Some(error.to_string());
    }

    /// Record a fault nothing could absorb: the operation degrades.
    pub fn record_degraded(&self, error: &dyn fmt::Display) {
        self.inner.degraded_ops.fetch_add(1, Ordering::Relaxed);
        *lock_unpoisoned(&self.inner.last_error) = Some(error.to_string());
    }

    /// Record a failed speculative readahead fill. Does not change the
    /// status or `last_error`: readahead is best-effort, and the client's
    /// own fill will face the error on the critical path.
    pub fn record_prefetch_failure(&self) {
        self.inner.prefetch_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Open or close the circuit breaker.
    pub fn set_breaker(&self, open: bool) {
        self.inner.breaker_open.store(open, Ordering::Relaxed);
    }

    /// Is the circuit breaker currently open?
    pub fn breaker_open(&self) -> bool {
        self.inner.breaker_open.load(Ordering::Relaxed)
    }

    /// Zero every counter and close the breaker (experiment harnesses).
    pub fn reset(&self) {
        self.inner.transient_faults.store(0, Ordering::Relaxed);
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.backoff_cost.store(0, Ordering::Relaxed);
        self.inner.degraded_ops.store(0, Ordering::Relaxed);
        self.inner.prefetch_failures.store(0, Ordering::Relaxed);
        self.inner.breaker_open.store(false, Ordering::Relaxed);
        *lock_unpoisoned(&self.inner.last_error) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_pristine() {
        let h = SourceHealth::new();
        let s = h.snapshot();
        assert!(s.is_pristine());
        assert_eq!(s.status, HealthStatus::Healthy);
        assert_eq!(s.last_error, None);
    }

    #[test]
    fn retries_keep_status_healthy() {
        let h = SourceHealth::new();
        h.record_retry(&"timeout", 10);
        h.record_retry(&"timeout", 20);
        let s = h.snapshot();
        assert_eq!(s.status, HealthStatus::Healthy);
        assert!(!s.is_pristine());
        assert_eq!(s.transient_faults, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff_cost, 30);
        assert_eq!(s.last_error.as_deref(), Some("timeout"));
    }

    #[test]
    fn degradation_and_breaker_escalate_status() {
        let h = SourceHealth::new();
        h.record_degraded(&"gave up");
        assert_eq!(h.status(), HealthStatus::Degraded);
        h.set_breaker(true);
        assert_eq!(h.status(), HealthStatus::Unavailable);
        h.reset();
        assert!(h.snapshot().is_pristine());
    }

    #[test]
    fn clones_share_state() {
        let h = SourceHealth::new();
        let view = h.clone();
        h.record_degraded(&"x");
        assert_eq!(view.snapshot().degraded_ops, 1);
    }
}
