//! Generalized path expressions.
//!
//! The body of a XMAS query binds variables by matching *generalized path
//! expressions* against documents, "as in Lorel" (§3): sequences of label
//! steps combined with the usual regular operators — `.` (concatenation),
//! `|` (alternation), `*` (Kleene star) — where `_` matches any label
//! (Fig. 4 uses `zip._` to reach the atomic content below a `zip`
//! element).
//!
//! Grammar (whitespace-free; parsed either standalone or inside a query):
//!
//! ```text
//! path   ::= alt
//! alt    ::= seq ('|' seq)*
//! seq    ::= rep ('.' rep)*
//! rep    ::= atom '*'?
//! atom   ::= label | '_' | '(' alt ')'
//! label  ::= [A-Za-z0-9_-]+      (a bare `_` alone is the wildcard)
//! ```
//!
//! A path is matched against the *sequence of labels* on the way down from
//! (but excluding) the start node; the node reached by the last step is the
//! extracted descendant.

use crate::XmasError;
use std::fmt;

/// A generalized path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathExpr {
    /// A single label step, e.g. `home`.
    Label(String),
    /// The wildcard step `_` (matches any label).
    Wildcard,
    /// Concatenation `a.b`.
    Seq(Vec<PathExpr>),
    /// Alternation `a|b`.
    Alt(Vec<PathExpr>),
    /// Kleene star `a*` (zero or more repetitions).
    Star(Box<PathExpr>),
}

impl PathExpr {
    /// Concatenate two paths.
    pub fn then(self, other: PathExpr) -> PathExpr {
        match self {
            PathExpr::Seq(mut v) => {
                v.push(other);
                PathExpr::Seq(v)
            }
            first => PathExpr::Seq(vec![first, other]),
        }
    }

    /// True if the expression contains a star — such paths are *recursive*
    /// and make the lazy `getDescendants` operator cache visited input
    /// nodes (§3: "when the getDescendants operator has a recursive
    /// regular path expression as a parameter it stores a part of the
    /// already visited input").
    pub fn is_recursive(&self) -> bool {
        match self {
            PathExpr::Label(_) | PathExpr::Wildcard => false,
            PathExpr::Seq(v) | PathExpr::Alt(v) => v.iter().any(PathExpr::is_recursive),
            PathExpr::Star(_) => true,
        }
    }

    /// True if every step is a plain label or wildcard chained by `.` —
    /// i.e. the path has a fixed depth. Fixed-depth, label-selective steps
    /// are exactly the ones the `select_φ` navigation command makes
    /// bounded (§2).
    pub fn is_fixed_depth(&self) -> bool {
        self.depth_range().1.is_some()
    }

    /// (min, max) number of steps; `max = None` when unbounded (a star).
    pub fn depth_range(&self) -> (usize, Option<usize>) {
        match self {
            PathExpr::Label(_) | PathExpr::Wildcard => (1, Some(1)),
            PathExpr::Seq(v) => v.iter().fold((0, Some(0)), |(lo, hi), p| {
                let (plo, phi) = p.depth_range();
                (lo + plo, hi.zip(phi).map(|(a, b)| a + b))
            }),
            PathExpr::Alt(v) => {
                let mut lo = usize::MAX;
                let mut hi = Some(0);
                for p in v {
                    let (plo, phi) = p.depth_range();
                    lo = lo.min(plo);
                    hi = hi.zip(phi).map(|(a, b)| a.max(b));
                }
                (if lo == usize::MAX { 0 } else { lo }, hi)
            }
            PathExpr::Star(_) => (0, None),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(p: &PathExpr) -> u8 {
            match p {
                PathExpr::Alt(_) => 0,
                PathExpr::Seq(_) => 1,
                PathExpr::Star(_) => 2,
                PathExpr::Label(_) | PathExpr::Wildcard => 3,
            }
        }
        fn go(p: &PathExpr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mine = prec(p);
            let need_parens = mine < parent;
            if need_parens {
                write!(f, "(")?;
            }
            match p {
                PathExpr::Label(l) => write!(f, "{l}")?,
                PathExpr::Wildcard => write!(f, "_")?,
                PathExpr::Seq(v) => {
                    for (i, q) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ".")?;
                        }
                        go(q, 1, f)?;
                    }
                }
                PathExpr::Alt(v) => {
                    for (i, q) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        go(q, 0, f)?;
                    }
                }
                PathExpr::Star(inner) => {
                    go(inner, 3, f)?;
                    write!(f, "*")?;
                }
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

/// Parse a path expression from text (e.g. `homes.home`, `zip._`,
/// `(a|b)*.c`).
pub fn parse_path(input: &str) -> Result<PathExpr, XmasError> {
    let mut p = PathParser { input, pos: 0 };
    p.skip_ws();
    let e = p.alt()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(XmasError::new(p.pos, "trailing input after path expression"));
    }
    Ok(e)
}

struct PathParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> PathParser<'a> {
    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn alt(&mut self) -> Result<PathExpr, XmasError> {
        let mut parts = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                self.skip_ws();
                parts.push(self.seq()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { PathExpr::Alt(parts) })
    }

    fn seq(&mut self) -> Result<PathExpr, XmasError> {
        let mut parts = vec![self.rep()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
                self.skip_ws();
                parts.push(self.rep()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { PathExpr::Seq(parts) })
    }

    fn rep(&mut self) -> Result<PathExpr, XmasError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('*') {
                self.bump();
                e = PathExpr::Star(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<PathExpr, XmasError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let e = self.alt()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(XmasError::new(self.pos, "expected ')' in path expression"));
                }
                self.bump();
                Ok(e)
            }
            Some(c) if c.is_alphanumeric() || c == '_' || c == '-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-')
                {
                    self.bump();
                }
                let word = &self.input[start..self.pos];
                if word == "_" {
                    Ok(PathExpr::Wildcard)
                } else {
                    Ok(PathExpr::Label(word.to_string()))
                }
            }
            _ => Err(XmasError::new(self.pos, "expected a path step")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathExpr {
        parse_path(s).unwrap()
    }

    #[test]
    fn simple_paths_from_the_paper() {
        assert_eq!(
            p("homes.home"),
            PathExpr::Seq(vec![
                PathExpr::Label("homes".into()),
                PathExpr::Label("home".into())
            ])
        );
        assert_eq!(
            p("zip._"),
            PathExpr::Seq(vec![PathExpr::Label("zip".into()), PathExpr::Wildcard])
        );
    }

    #[test]
    fn regular_operators() {
        let e = p("(a|b)*.c");
        assert_eq!(
            e,
            PathExpr::Seq(vec![
                PathExpr::Star(Box::new(PathExpr::Alt(vec![
                    PathExpr::Label("a".into()),
                    PathExpr::Label("b".into())
                ]))),
                PathExpr::Label("c".into())
            ])
        );
        assert!(e.is_recursive());
        assert!(!p("a.b|c").is_recursive());
    }

    #[test]
    fn alternation_binds_loosest() {
        // a.b|c = (a.b)|c
        assert_eq!(
            p("a.b|c"),
            PathExpr::Alt(vec![
                PathExpr::Seq(vec![PathExpr::Label("a".into()), PathExpr::Label("b".into())]),
                PathExpr::Label("c".into())
            ])
        );
    }

    #[test]
    fn display_roundtrip() {
        for s in ["a", "_", "a.b", "a.b.c", "a|b", "(a|b)*.c", "a.(b|c)", "a*", "(a.b)*"] {
            let e = p(s);
            assert_eq!(p(&e.to_string()), e, "roundtrip via {}", e);
        }
    }

    #[test]
    fn depth_ranges() {
        assert_eq!(p("a.b").depth_range(), (2, Some(2)));
        assert_eq!(p("a|b.c").depth_range(), (1, Some(2)));
        assert_eq!(p("a*").depth_range(), (0, None));
        assert_eq!(p("a.b*").depth_range(), (1, None));
        assert!(p("a.b").is_fixed_depth());
        assert!(!p("a.b*").is_fixed_depth());
    }

    #[test]
    fn underscore_prefixed_names_are_labels() {
        // `_x` is a label, only a lone `_` is the wildcard.
        assert_eq!(p("_x"), PathExpr::Label("_x".into()));
        assert_eq!(p("_"), PathExpr::Wildcard);
    }

    #[test]
    fn errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a.").is_err());
        assert!(parse_path("(a").is_err());
        assert!(parse_path("a||b").is_err());
        assert!(parse_path("a b").is_err());
    }

    #[test]
    fn then_concatenates() {
        let e = p("a").then(p("b")).then(p("c"));
        assert_eq!(e, p("a.b.c"));
    }
}
