//! Recursive-descent parser for XMAS queries.

use crate::ast::{CmpOp, Condition, HeadElem, HeadItem, LabelSpec, Operand, Query, Var};
use crate::lexer::{tokenize, TagName, Token, TokenKind};
use crate::path::{parse_path, PathExpr};
use crate::XmasError;

/// Parse a complete XMAS query (`CONSTRUCT … WHERE …`).
pub fn parse_query(input: &str) -> Result<Query, XmasError> {
    let tokens = tokenize(input)?;
    let mut p = QueryParser { tokens, pos: 0 };
    p.expect(&TokenKind::Construct)?;
    let head = p.elem()?;
    p.expect(&TokenKind::Where)?;
    let mut body = p.condition()?;
    while p.eat(&TokenKind::And) {
        body.extend(p.condition()?);
    }
    p.expect(&TokenKind::Eof)?;
    Ok(Query { head, body })
}

struct QueryParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl QueryParser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), XmasError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(XmasError::new(
                self.offset(),
                format!("expected {kind:?}, found {:?}", self.peek()),
            ))
        }
    }

    /// `<tag> item* </tag> {group}` — the group annotation is optional and
    /// defaults to `{}` (create exactly one instance).
    fn elem(&mut self) -> Result<HeadElem, XmasError> {
        let off = self.offset();
        let open = match self.bump() {
            TokenKind::OpenTag(name) => name,
            other => {
                return Err(XmasError::new(off, format!("expected an open tag, found {other:?}")))
            }
        };
        let label = match &open {
            TagName::Const(s) => LabelSpec::Const(s.clone()),
            TagName::Var(v) => LabelSpec::Var(Var::new(v.clone())),
        };
        let mut children = Vec::new();
        loop {
            match self.peek() {
                TokenKind::CloseTag(close) => {
                    // Validate tag matching; `</>` closes anything.
                    if let Some(c) = close {
                        if *c != open {
                            return Err(XmasError::new(
                                self.offset(),
                                format!("mismatched close tag: <{open:?}> closed by {c:?}"),
                            ));
                        }
                    }
                    self.bump();
                    break;
                }
                TokenKind::OpenTag(_) => children.push(HeadItem::Elem(self.elem()?)),
                TokenKind::Dollar(name) => {
                    let var = Var::new(name.clone());
                    self.bump();
                    if self.peek() == &TokenKind::LBrace {
                        let group = self.group()?;
                        if group.len() != 1 || group[0] != var {
                            return Err(XmasError::new(
                                self.offset(),
                                format!(
                                    "a collected variable's annotation must repeat it: \
                                     expected {var} {{{var}}}"
                                ),
                            ));
                        }
                        children.push(HeadItem::Collect(var));
                    } else {
                        children.push(HeadItem::Single(var));
                    }
                }
                TokenKind::Str(s) => {
                    children.push(HeadItem::Text(s.clone()));
                    self.bump();
                }
                TokenKind::Ident(s) => {
                    // Bare words inside an element are literal text
                    // (XMAS heads in the paper contain only tags and
                    // variables, but literals are convenient).
                    children.push(HeadItem::Text(s.clone()));
                    self.bump();
                }
                other => {
                    return Err(XmasError::new(
                        self.offset(),
                        format!("unexpected {other:?} in element content"),
                    ))
                }
            }
        }
        let group = if self.peek() == &TokenKind::LBrace { self.group()? } else { Vec::new() };
        Ok(HeadElem { label, children, group })
    }

    /// `{}` or `{$A}` or `{$A,$B}`.
    fn group(&mut self) -> Result<Vec<Var>, XmasError> {
        self.expect(&TokenKind::LBrace)?;
        let mut vars = Vec::new();
        if self.eat(&TokenKind::RBrace) {
            return Ok(vars);
        }
        loop {
            match self.bump() {
                TokenKind::Dollar(name) => vars.push(Var::new(name)),
                other => {
                    return Err(XmasError::new(
                        self.offset(),
                        format!("expected a variable in group annotation, found {other:?}"),
                    ))
                }
            }
            if self.eat(&TokenKind::RBrace) {
                return Ok(vars);
            }
            self.expect(&TokenKind::Comma)?;
        }
    }

    /// One surface condition; tree patterns desugar into several
    /// path conditions, hence the `Vec`.
    fn condition(&mut self) -> Result<Vec<Condition>, XmasError> {
        let off = self.offset();
        // Tree-pattern conditions start with a tag (footnote 6):
        // `<homes> $H: <home> <zip>$V1</zip> </home> </homes> IN homesSrc`.
        if matches!(self.peek(), TokenKind::OpenTag(_)) {
            return self.pattern_condition();
        }
        match self.bump() {
            // `source path $V`
            TokenKind::Ident(source) => {
                let path = self.path()?;
                let var = self.dollar()?;
                Ok(vec![Condition::SourcePath { source, path, var }])
            }
            // `$X path $V`  or  `$X op operand`
            TokenKind::Dollar(from) => {
                let from = Var::new(from);
                if let TokenKind::Op(op) = self.peek().clone() {
                    self.bump();
                    let right = self.operand()?;
                    Ok(vec![Condition::Cmp {
                        left: Operand::Var(from),
                        op: parse_cmp(&op, off)?,
                        right,
                    }])
                } else {
                    let path = self.path()?;
                    let var = self.dollar()?;
                    Ok(vec![Condition::VarPath { from, path, var }])
                }
            }
            // literal op operand (rare but legal)
            TokenKind::Str(s) => {
                let op = self.op()?;
                let right = self.operand()?;
                Ok(vec![Condition::Cmp { left: Operand::Str(s), op, right }])
            }
            TokenKind::Int(i) => {
                let op = self.op()?;
                let right = self.operand()?;
                Ok(vec![Condition::Cmp { left: Operand::Int(i), op, right }])
            }
            other => Err(XmasError::new(off, format!("expected a condition, found {other:?}"))),
        }
    }

    /// Tree-pattern condition (footnote 6): parse the pattern, expect
    /// `IN source`, and desugar into the equivalent path conditions —
    /// the paper states the equivalence explicitly for the Fig. 3 query.
    fn pattern_condition(&mut self) -> Result<Vec<Condition>, XmasError> {
        let pattern = self.pattern_elem()?;
        self.expect(&TokenKind::In)?;
        let off = self.offset();
        let source = match self.bump() {
            TokenKind::Ident(s) => s,
            other => {
                return Err(XmasError::new(
                    off,
                    format!("expected a source name after IN, found {other:?}"),
                ))
            }
        };
        let mut out = Vec::new();
        // The outermost pattern element matches the source's root element,
        // so item paths start with its label.
        desugar_pattern(
            &pattern,
            Anchor::Source(source),
            vec![pattern.label.clone()],
            &mut out,
        )?;
        if out.is_empty() {
            return Err(XmasError::new(
                off,
                "a tree pattern must bind at least one variable",
            ));
        }
        Ok(out)
    }

    /// `<name> pitem* </name>` with pitems: `$X:` ⟨pattern⟩, nested
    /// patterns, or a bare `$X` (binds any child of the enclosing
    /// element).
    fn pattern_elem(&mut self) -> Result<PatternElem, XmasError> {
        let off = self.offset();
        let open = match self.bump() {
            TokenKind::OpenTag(TagName::Const(name)) => name,
            other => {
                return Err(XmasError::new(
                    off,
                    format!("tree patterns use constant tags, found {other:?}"),
                ))
            }
        };
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::CloseTag(close) => {
                    if let Some(TagName::Const(c)) = &close {
                        if *c != open {
                            return Err(XmasError::new(
                                self.offset(),
                                format!("mismatched pattern tags <{open}> … </{c}>"),
                            ));
                        }
                    }
                    self.bump();
                    break;
                }
                TokenKind::Dollar(name) => {
                    self.bump();
                    // `$X :` binds the next nested pattern's element;
                    // a bare `$X` binds any child.
                    if self.eat(&TokenKind::Colon) {
                        let inner = self.pattern_elem()?;
                        items.push(PatternItem::Bound(Var::new(name), inner));
                    } else {
                        items.push(PatternItem::AnyChild(Var::new(name)));
                    }
                }
                TokenKind::OpenTag(_) => {
                    let inner = self.pattern_elem()?;
                    items.push(PatternItem::Unbound(inner));
                }
                other => {
                    return Err(XmasError::new(
                        self.offset(),
                        format!("unexpected {other:?} inside a tree pattern"),
                    ))
                }
            }
        }
        Ok(PatternElem { label: open, items })
    }

    fn dollar(&mut self) -> Result<Var, XmasError> {
        let off = self.offset();
        match self.bump() {
            TokenKind::Dollar(name) => Ok(Var::new(name)),
            other => Err(XmasError::new(off, format!("expected a variable, found {other:?}"))),
        }
    }

    fn op(&mut self) -> Result<CmpOp, XmasError> {
        let off = self.offset();
        match self.bump() {
            TokenKind::Op(op) => parse_cmp(&op, off),
            other => {
                Err(XmasError::new(off, format!("expected a comparison operator, found {other:?}")))
            }
        }
    }

    fn operand(&mut self) -> Result<Operand, XmasError> {
        let off = self.offset();
        match self.bump() {
            TokenKind::Dollar(name) => Ok(Operand::Var(Var::new(name))),
            TokenKind::Str(s) => Ok(Operand::Str(s)),
            TokenKind::Int(i) => Ok(Operand::Int(i)),
            other => Err(XmasError::new(off, format!("expected an operand, found {other:?}"))),
        }
    }

    /// Collect the tokens of a path expression and delegate to the
    /// dedicated path parser, so both surfaces share one grammar.
    fn path(&mut self) -> Result<PathExpr, XmasError> {
        let off = self.offset();
        let mut text = String::new();
        loop {
            match self.peek() {
                TokenKind::Ident(s) => text.push_str(s),
                TokenKind::Underscore => text.push('_'),
                TokenKind::Dot => text.push('.'),
                TokenKind::Pipe => text.push('|'),
                TokenKind::Star => text.push('*'),
                TokenKind::LParen => text.push('('),
                TokenKind::RParen => text.push(')'),
                TokenKind::Int(i) => text.push_str(&i.to_string()),
                _ => break,
            }
            self.bump();
        }
        if text.is_empty() {
            return Err(XmasError::new(off, "expected a path expression"));
        }
        parse_path(&text).map_err(|e| XmasError::new(off, e.message))
    }
}

/// A parsed tree pattern (footnote 6).
struct PatternElem {
    label: String,
    items: Vec<PatternItem>,
}

enum PatternItem {
    /// `$X: <elem>…</elem>` — binds the matched element.
    Bound(Var, PatternElem),
    /// `<elem>…</elem>` — structural constraint without a binder.
    Unbound(PatternElem),
    /// `$X` — binds any child of the enclosing element.
    AnyChild(Var),
}

/// Where a pattern element is matched from: the source root, or an
/// already-bound variable.
enum Anchor {
    Source(String),
    Var(Var),
}

/// Desugar a pattern into path conditions. `steps` is the label path
/// from the anchor down to element `e` (empty when `e` is the anchor's
/// own bound element); each item of `e` lives at `steps + [child…]`.
fn desugar_pattern(
    e: &PatternElem,
    anchor: Anchor,
    steps: Vec<String>,
    out: &mut Vec<Condition>,
) -> Result<(), XmasError> {
    fn path_of(parts: Vec<PathExpr>) -> PathExpr {
        if parts.len() == 1 {
            parts.into_iter().next().expect("one part")
        } else {
            PathExpr::Seq(parts)
        }
    }
    fn emit(out: &mut Vec<Condition>, anchor: &Anchor, path: PathExpr, var: Var) {
        match anchor {
            Anchor::Source(s) => {
                out.push(Condition::SourcePath { source: s.clone(), path, var })
            }
            Anchor::Var(v) => out.push(Condition::VarPath { from: v.clone(), path, var }),
        }
    }

    for item in &e.items {
        match item {
            PatternItem::AnyChild(v) => {
                let mut parts: Vec<PathExpr> =
                    steps.iter().cloned().map(PathExpr::Label).collect();
                parts.push(PathExpr::Wildcard);
                emit(out, &anchor, path_of(parts), v.clone());
            }
            PatternItem::Bound(v, inner) => {
                let mut parts: Vec<PathExpr> =
                    steps.iter().cloned().map(PathExpr::Label).collect();
                parts.push(PathExpr::Label(inner.label.clone()));
                emit(out, &anchor, path_of(parts), v.clone());
                // The bound element becomes the anchor for its own items.
                desugar_pattern(inner, Anchor::Var(v.clone()), Vec::new(), out)?;
            }
            PatternItem::Unbound(inner) => {
                let mut next = steps.clone();
                next.push(inner.label.clone());
                let anchor2 = match &anchor {
                    Anchor::Source(s) => Anchor::Source(s.clone()),
                    Anchor::Var(v) => Anchor::Var(v.clone()),
                };
                desugar_pattern(inner, anchor2, next, out)?;
            }
        }
    }
    Ok(())
}

fn parse_cmp(op: &str, off: usize) -> Result<CmpOp, XmasError> {
    Ok(match op {
        "=" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(XmasError::new(off, format!("unknown operator `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3, including its `%` comments.
    const FIG3: &str = r#"
CONSTRUCT <answer>                      % Construct the root element containing ...
            <med_home> $H               % ... med_home elements followed by
              $S {$S}                   % ... school elements (one for each $S)
            </med_home> {$H}            % (one med_home element for each $H)
          </answer> {}                  % create one answer element (= for each {})
WHERE homesSrc homes.home $H AND $H zip._ $V1   % get home elements $H and their zip code $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2 % ... similarly for schools
  AND $V1 = $V2                         % ... join on the zip code
"#;

    #[test]
    fn parses_figure_3_verbatim() {
        let q = parse_query(FIG3).unwrap();

        // Head: <answer> … </answer> {}
        assert_eq!(q.head.label, LabelSpec::Const("answer".into()));
        assert_eq!(q.head.group, Vec::<Var>::new());
        assert_eq!(q.head.children.len(), 1);
        let HeadItem::Elem(med) = &q.head.children[0] else {
            panic!("expected nested med_home element");
        };
        assert_eq!(med.label, LabelSpec::Const("med_home".into()));
        assert_eq!(med.group, vec![Var::new("H")]);
        assert_eq!(
            med.children,
            vec![HeadItem::Single(Var::new("H")), HeadItem::Collect(Var::new("S"))]
        );

        // Body: five conditions.
        assert_eq!(q.body.len(), 5);
        assert_eq!(
            q.body[0],
            Condition::SourcePath {
                source: "homesSrc".into(),
                path: parse_path("homes.home").unwrap(),
                var: Var::new("H"),
            }
        );
        assert_eq!(
            q.body[1],
            Condition::VarPath {
                from: Var::new("H"),
                path: parse_path("zip._").unwrap(),
                var: Var::new("V1"),
            }
        );
        assert_eq!(
            q.body[4],
            Condition::Cmp {
                left: Operand::Var(Var::new("V1")),
                op: CmpOp::Eq,
                right: Operand::Var(Var::new("V2")),
            }
        );
    }

    #[test]
    fn literal_comparisons() {
        let q = parse_query(
            r#"CONSTRUCT <r> $X </r> {} WHERE s a.b $X AND $X = "La Jolla" AND $X != 7"#,
        )
        .unwrap();
        assert_eq!(q.body.len(), 3);
        assert!(matches!(
            &q.body[1],
            Condition::Cmp { op: CmpOp::Eq, right: Operand::Str(s), .. } if s == "La Jolla"
        ));
        assert!(matches!(
            &q.body[2],
            Condition::Cmp { op: CmpOp::Ne, right: Operand::Int(7), .. }
        ));
    }

    #[test]
    fn numeric_comparison_operators() {
        for (src, op) in [
            ("$X < 5", CmpOp::Lt),
            ("$X <= 5", CmpOp::Le),
            ("$X > 5", CmpOp::Gt),
            ("$X >= 5", CmpOp::Ge),
        ] {
            let q =
                parse_query(&format!("CONSTRUCT <r> $X </r> {{}} WHERE s p $X AND {src}")).unwrap();
            assert!(
                matches!(&q.body[1], Condition::Cmp { op: o, .. } if *o == op),
                "operator in {src}"
            );
        }
    }

    #[test]
    fn variable_label_tags() {
        let q = parse_query("CONSTRUCT <$L> $X </> {} WHERE s p.q $X AND $X t $L").unwrap();
        assert_eq!(q.head.label, LabelSpec::Var(Var::new("L")));
    }

    #[test]
    fn recursive_paths_in_body() {
        let q = parse_query("CONSTRUCT <r> $X {$X} </r> {} WHERE s part*.name $X").unwrap();
        let Condition::SourcePath { path, .. } = &q.body[0] else { panic!() };
        assert!(path.is_recursive());
        assert_eq!(path.to_string(), "part*.name");
    }

    #[test]
    fn group_annotation_with_multiple_vars() {
        let q = parse_query("CONSTRUCT <r> $X </r> {$X,$Y} WHERE s p $X AND $X q $Y").unwrap();
        assert_eq!(q.head.group, vec![Var::new("X"), Var::new("Y")]);
    }

    #[test]
    fn parse_errors() {
        // Missing WHERE.
        assert!(parse_query("CONSTRUCT <a> </a> {}").is_err());
        // Mismatched tags.
        assert!(parse_query("CONSTRUCT <a> </b> {} WHERE s p $X").is_err());
        // Collect annotation not repeating the variable.
        assert!(parse_query("CONSTRUCT <a> $X {$Y} </a> {} WHERE s p $X AND s p $Y").is_err());
        // Condition missing its variable.
        assert!(parse_query("CONSTRUCT <a> </a> {} WHERE s p.q").is_err());
        // Garbage after the query.
        assert!(parse_query("CONSTRUCT <a> </a> {} WHERE s p $X extra junk $Y $Z").is_err());
    }

    #[test]
    fn tree_pattern_of_footnote_6_desugars_to_path_conditions() {
        // "<homes> $H: <home> <zip>$V1</zip> </home> </homes> IN homesSrc
        //  is the equivalent of the first line in the WHERE clause".
        let pattern = parse_query(
            "CONSTRUCT <r> $H {$H} </r> {} WHERE \
             <homes> $H: <home> <zip> $V1 </zip> </home> </homes> IN homesSrc",
        )
        .unwrap();
        let paths = parse_query(
            "CONSTRUCT <r> $H {$H} </r> {} WHERE homesSrc homes.home $H AND $H zip._ $V1",
        )
        .unwrap();
        assert_eq!(pattern.body, paths.body);
    }

    #[test]
    fn tree_pattern_full_figure_3_equivalence() {
        let pattern = parse_query(
            "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
             WHERE <homes> $H: <home> <zip> $V1 </zip> </home> </homes> IN homesSrc \
               AND <schools> $S: <school> <zip> $V2 </zip> </school> </schools> IN schoolsSrc \
               AND $V1 = $V2",
        )
        .unwrap();
        let paths = parse_query(
            "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
             WHERE homesSrc homes.home $H AND $H zip._ $V1 \
               AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
        )
        .unwrap();
        assert_eq!(pattern, paths);
    }

    #[test]
    fn tree_pattern_unbound_intermediate_elements() {
        // Unbound elements just extend the path.
        let pattern = parse_query(
            "CONSTRUCT <r> $N {$N} </r> {} WHERE \
             <site> <people> $P: <person> <name> $N </name> </person> </people> </site> IN db",
        )
        .unwrap();
        let paths = parse_query(
            "CONSTRUCT <r> $N {$N} </r> {} \
             WHERE db site.people.person $P AND $P name._ $N",
        )
        .unwrap();
        assert_eq!(pattern.body, paths.body);
    }

    #[test]
    fn tree_pattern_errors() {
        // Must bind something.
        assert!(parse_query(
            "CONSTRUCT <r> $X {$X} </r> {} WHERE <a> <b> </b> </a> IN src AND src c $X"
        )
        .is_err());
        // Mismatched tags.
        assert!(parse_query(
            "CONSTRUCT <r> $X {$X} </r> {} WHERE <a> $X: <b> </c> </a> IN src"
        )
        .is_err());
        // Missing IN.
        assert!(parse_query(
            "CONSTRUCT <r> $X {$X} </r> {} WHERE <a> $X: <b> </b> </a> src"
        )
        .is_err());
    }

    #[test]
    fn numeric_path_steps() {
        // Labels may be numeric (e.g. row numbers exported by wrappers).
        let q = parse_query("CONSTRUCT <r> $X </r> {} WHERE s table.5 $X").unwrap();
        let Condition::SourcePath { path, .. } = &q.body[0] else { panic!() };
        assert_eq!(path.to_string(), "table.5");
    }
}
