//! Abstract syntax of XMAS queries.

use crate::path::PathExpr;
use std::fmt;

/// A variable name (`$H` is spelled `Var("H")`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub String);

impl Var {
    /// Construct a variable from its name (without the `$`).
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// The variable's name without the `$`.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A full XMAS query: `CONSTRUCT head WHERE body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The construction template (with explicit group-by annotations).
    pub head: HeadElem,
    /// The conjunctive body conditions.
    pub body: Vec<Condition>,
}

/// The label of a constructed element: constant (`<answer>`) or a variable
/// (`<$L>`), matching `createElement`'s "label … can be either a constant
/// or a variable" (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelSpec {
    Const(String),
    Var(Var),
}

impl fmt::Display for LabelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelSpec::Const(s) => write!(f, "{s}"),
            LabelSpec::Var(v) => write!(f, "{v}"),
        }
    }
}

/// An element constructor in the head, e.g.
/// `<med_home> $H $S {$S} </med_home> {$H}`.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadElem {
    /// Tag of the created element.
    pub label: LabelSpec,
    /// Content items, in order.
    pub children: Vec<HeadItem>,
    /// The group-by annotation following the closing tag: `{$H}` means one
    /// element per binding of `$H`; `{}` means exactly one element.
    pub group: Vec<Var>,
}

/// One content item of a head element.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadItem {
    /// A nested element constructor.
    Elem(HeadElem),
    /// A variable without its own group annotation (`$H`): a single value
    /// per instance of the enclosing element (its variable must be
    /// functionally determined by the enclosing group).
    Single(Var),
    /// A variable with a group annotation (`$S {$S}`): the list of all its
    /// bindings within the enclosing instance.
    Collect(Var),
    /// A literal text leaf.
    Text(String),
}

/// A body condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `source path $V` — bind `$V` to each node reachable from the root
    /// of `source` along `path` (e.g. `homesSrc homes.home $H`).
    SourcePath { source: String, path: PathExpr, var: Var },
    /// `$X path $V` — bind `$V` to each node reachable from the binding of
    /// `$X` along `path` (e.g. `$H zip._ $V1`).
    VarPath { from: Var, path: PathExpr, var: Var },
    /// A comparison, e.g. `$V1 = $V2` or `$P < 500000`.
    Cmp { left: Operand, op: CmpOp, right: Operand },
}

/// Comparison operand: a variable or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Var(Var),
    Str(String),
    Int(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Str(s) => write!(f, "{s:?}"),
            Operand::Int(i) => write!(f, "{i}"),
        }
    }
}

pub use mix_nav::pred::CmpOp;

impl Query {
    /// All variables bound by the body, in first-binding order.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for c in &self.body {
            if let Condition::SourcePath { var, .. } | Condition::VarPath { var, .. } = c {
                if !out.contains(var) {
                    out.push(var.clone());
                }
            }
        }
        out
    }

    /// All variables mentioned in the head.
    pub fn head_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        fn walk(e: &HeadElem, out: &mut Vec<Var>) {
            if let LabelSpec::Var(v) = &e.label {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            for v in &e.group {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            for item in &e.children {
                match item {
                    HeadItem::Elem(inner) => walk(inner, out),
                    HeadItem::Single(v) | HeadItem::Collect(v) => {
                        if !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                    HeadItem::Text(_) => {}
                }
            }
        }
        walk(&self.head, &mut out);
        out
    }

    /// Check that every head variable is bound by the body.
    pub fn check_safe(&self) -> Result<(), crate::XmasError> {
        let bound = self.body_vars();
        for v in self.head_vars() {
            if !bound.contains(&v) {
                return Err(crate::XmasError::new(
                    0,
                    format!("head variable {v} is not bound in the WHERE clause"),
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONSTRUCT ")?;
        fmt_elem(&self.head, f)?;
        write!(f, " WHERE ")?;
        for (i, c) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            match c {
                Condition::SourcePath { source, path, var } => {
                    write!(f, "{source} {path} {var}")?
                }
                Condition::VarPath { from, path, var } => write!(f, "{from} {path} {var}")?,
                Condition::Cmp { left, op, right } => write!(f, "{left} {op} {right}")?,
            }
        }
        Ok(())
    }
}

fn fmt_elem(e: &HeadElem, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "<{}>", e.label)?;
    for item in &e.children {
        write!(f, " ")?;
        match item {
            HeadItem::Elem(inner) => fmt_elem(inner, f)?,
            HeadItem::Single(v) => write!(f, "{v}")?,
            HeadItem::Collect(v) => write!(f, "{v} {{{v}}}")?,
            HeadItem::Text(s) => write!(f, "{s:?}")?,
        }
    }
    write!(f, " </{}>", e.label)?;
    write!(f, " {{")?;
    for (i, v) in e.group.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{v}")?;
    }
    write!(f, "}}")
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    const FIG3: &str = r#"
        CONSTRUCT <answer>
                    <med_home> $H
                      $S {$S}
                    </med_home> {$H}
                  </answer> {}
        WHERE homesSrc homes.home $H AND $H zip._ $V1
          AND schoolsSrc schools.school $S AND $S zip._ $V2
          AND $V1 = $V2
    "#;

    #[test]
    fn body_vars_in_binding_order() {
        let q = parse_query(FIG3).unwrap();
        let vars = q.body_vars();
        let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
        assert_eq!(names, ["H", "V1", "S", "V2"]);
    }

    #[test]
    fn head_vars() {
        let q = parse_query(FIG3).unwrap();
        let vars = q.head_vars();
        let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
        assert_eq!(names, ["H", "S"]);
    }

    #[test]
    fn safety_check() {
        let q = parse_query(FIG3).unwrap();
        assert!(q.check_safe().is_ok());
        let bad = parse_query("CONSTRUCT <a> $X </a> {} WHERE src p $Y").unwrap();
        let err = bad.check_safe().unwrap_err();
        assert!(err.message.contains("$X"));
    }

    #[test]
    fn display_is_reparseable() {
        let q = parse_query(FIG3).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2);
    }
}
