//! Tokenizer for XMAS query text.
//!
//! Notable surface details taken from the paper's Figure 3: `%` starts a
//! line comment, tags are written `<name>`/`</name>`, variables `$Name`,
//! group annotations `{…}`, and the body is a conjunction joined by `AND`.

use crate::XmasError;

/// One token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub offset: usize,
    pub kind: TokenKind,
}

/// The token kinds of XMAS.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `CONSTRUCT` keyword (case-insensitive).
    Construct,
    /// `WHERE` keyword.
    Where,
    /// `AND` keyword.
    And,
    /// `IN` keyword (reserved for the tree-pattern syntax of footnote 6).
    In,
    /// `<name>` or `<$V>`.
    OpenTag(TagName),
    /// `</name>` or `</$V>` or `</>`.
    CloseTag(Option<TagName>),
    /// `$Name`.
    Dollar(String),
    /// A bare identifier (source names, path steps).
    Ident(String),
    /// `"..."` string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `:` (tree-pattern binders, footnote 6)
    Colon,
    /// `|`
    Pipe,
    /// `*`
    Star,
    /// `_` (path wildcard)
    Underscore,
    /// `=`, `!=`, `<=`, `>=`, `<`, `>` — note `<` only lexes as an operator
    /// when it cannot start a tag.
    Op(String),
    /// End of input.
    Eof,
}

/// A tag name: constant or variable.
#[derive(Debug, Clone, PartialEq)]
pub enum TagName {
    Const(String),
    Var(String),
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, XmasError> {
    let mut lx = Lexer { input, pos: 0, out: Vec::new() };
    lx.run()?;
    Ok(lx.out)
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.input[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn push(&mut self, offset: usize, kind: TokenKind) {
        self.out.push(Token { offset, kind });
    }

    fn run(&mut self) -> Result<(), XmasError> {
        loop {
            // Skip whitespace and `%` line comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('%') => {
                        while !matches!(self.peek(), None | Some('\n')) {
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(start, TokenKind::Eof);
                return Ok(());
            };
            match c {
                '<' => {
                    // `<name>`, `</name>`, `</>`, `<$V>` — or the
                    // comparison operators `<`, `<=`.
                    if self.looks_like_tag() {
                        self.lex_tag(start)?;
                    } else {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            self.push(start, TokenKind::Op("<=".into()));
                        } else {
                            self.push(start, TokenKind::Op("<".into()));
                        }
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(start, TokenKind::Op(">=".into()));
                    } else {
                        self.push(start, TokenKind::Op(">".into()));
                    }
                }
                '=' => {
                    self.bump();
                    self.push(start, TokenKind::Op("=".into()));
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(start, TokenKind::Op("!=".into()));
                    } else {
                        return Err(XmasError::new(start, "expected `!=`"));
                    }
                }
                '$' => {
                    self.bump();
                    let name = self.ident_text();
                    if name.is_empty() {
                        return Err(XmasError::new(start, "expected a variable name after `$`"));
                    }
                    self.push(start, TokenKind::Dollar(name));
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(XmasError::new(start, "unterminated string")),
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                Some(e) => s.push(e),
                                None => {
                                    return Err(XmasError::new(start, "unterminated escape"))
                                }
                            },
                            Some(other) => s.push(other),
                        }
                    }
                    self.push(start, TokenKind::Str(s));
                }
                '{' => {
                    self.bump();
                    self.push(start, TokenKind::LBrace);
                }
                '}' => {
                    self.bump();
                    self.push(start, TokenKind::RBrace);
                }
                '(' => {
                    self.bump();
                    self.push(start, TokenKind::LParen);
                }
                ')' => {
                    self.bump();
                    self.push(start, TokenKind::RParen);
                }
                '.' => {
                    self.bump();
                    self.push(start, TokenKind::Dot);
                }
                ',' => {
                    self.bump();
                    self.push(start, TokenKind::Comma);
                }
                ':' => {
                    self.bump();
                    self.push(start, TokenKind::Colon);
                }
                '|' => {
                    self.bump();
                    self.push(start, TokenKind::Pipe);
                }
                '*' => {
                    self.bump();
                    self.push(start, TokenKind::Star);
                }
                c if c.is_ascii_digit() || (c == '-' && matches!(self.peek2(), Some(d) if d.is_ascii_digit())) =>
                {
                    let neg = c == '-';
                    if neg {
                        self.bump();
                    }
                    let ds = self.pos;
                    while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                        self.bump();
                    }
                    let text = &self.input[ds..self.pos];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| XmasError::new(start, "integer literal out of range"))?;
                    self.push(start, TokenKind::Int(if neg { -v } else { v }));
                }
                c if c.is_alphanumeric() || c == '_' || c == '-' => {
                    let word = self.ident_text();
                    let kind = match word.to_ascii_uppercase().as_str() {
                        "CONSTRUCT" => TokenKind::Construct,
                        "WHERE" => TokenKind::Where,
                        "AND" => TokenKind::And,
                        "IN" => TokenKind::In,
                        _ if word == "_" => TokenKind::Underscore,
                        _ => TokenKind::Ident(word),
                    };
                    self.push(start, kind);
                }
                other => {
                    return Err(XmasError::new(start, format!("unexpected character `{other}`")));
                }
            }
        }
    }

    fn ident_text(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        self.input[start..self.pos].to_string()
    }

    /// Lookahead: does the `<` at the cursor start a tag?
    fn looks_like_tag(&self) -> bool {
        let rest = &self.input[self.pos + 1..];
        let mut chars = rest.chars();
        match chars.next() {
            Some('/') | Some('$') => true,
            Some(c) if c.is_alphabetic() || c == '_' => {
                // `<ident>` is a tag only if an ident run is followed by `>`.
                let rest2 = rest.trim_start_matches(|c: char| {
                    c.is_alphanumeric() || c == '_' || c == '-'
                });
                rest2.starts_with('>')
            }
            _ => false,
        }
    }

    fn lex_tag(&mut self, start: usize) -> Result<(), XmasError> {
        self.bump(); // '<'
        let closing = if self.peek() == Some('/') {
            self.bump();
            true
        } else {
            false
        };
        let name = if self.peek() == Some('$') {
            self.bump();
            let n = self.ident_text();
            if n.is_empty() {
                return Err(XmasError::new(start, "expected a variable name after `<$`"));
            }
            Some(TagName::Var(n))
        } else {
            let n = self.ident_text();
            if n.is_empty() {
                if closing {
                    None // `</>`
                } else {
                    return Err(XmasError::new(start, "expected a tag name"));
                }
            } else {
                Some(TagName::Const(n))
            }
        };
        if self.peek() != Some('>') {
            return Err(XmasError::new(self.pos, "expected `>` to close the tag"));
        }
        self.bump();
        if closing {
            self.push(start, TokenKind::CloseTag(name));
        } else {
            // `<…>` open tags always carry a name.
            let name = name.expect("open tags carry a name");
            self.push(start, TokenKind::OpenTag(name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tags_and_vars() {
        assert_eq!(
            kinds("<answer> $H </answer>"),
            vec![
                TokenKind::OpenTag(TagName::Const("answer".into())),
                TokenKind::Dollar("H".into()),
                TokenKind::CloseTag(Some(TagName::Const("answer".into()))),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn variable_tags_and_anonymous_close() {
        assert_eq!(
            kinds("<$L> x </>"),
            vec![
                TokenKind::OpenTag(TagName::Var("L".into())),
                TokenKind::Ident("x".into()),
                TokenKind::CloseTag(None),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_vs_tag_disambiguation() {
        // `<` followed by a variable-with-int is an operator, not a tag.
        assert_eq!(
            kinds("$X < 5"),
            vec![
                TokenKind::Dollar("X".into()),
                TokenKind::Op("<".into()),
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("$X <= $Y"),
            vec![
                TokenKind::Dollar("X".into()),
                TokenKind::Op("<=".into()),
                TokenKind::Dollar("Y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn percent_comments_are_skipped() {
        let toks = kinds("CONSTRUCT % Construct the root element\n WHERE");
        assert_eq!(toks, vec![TokenKind::Construct, TokenKind::Where, TokenKind::Eof]);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("construct where and"),
            vec![TokenKind::Construct, TokenKind::Where, TokenKind::And, TokenKind::Eof]
        );
    }

    #[test]
    fn path_tokens() {
        assert_eq!(
            kinds("homes.home (a|b)*._"),
            vec![
                TokenKind::Ident("homes".into()),
                TokenKind::Dot,
                TokenKind::Ident("home".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Pipe,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Star,
                TokenKind::Dot,
                TokenKind::Underscore,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_ints() {
        assert_eq!(
            kinds(r#"$X = "La Jolla" AND $Y != -42"#),
            vec![
                TokenKind::Dollar("X".into()),
                TokenKind::Op("=".into()),
                TokenKind::Str("La Jolla".into()),
                TokenKind::And,
                TokenKind::Dollar("Y".into()),
                TokenKind::Op("!=".into()),
                TokenKind::Int(-42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn group_braces() {
        assert_eq!(
            kinds("{$H} {}"),
            vec![
                TokenKind::LBrace,
                TokenKind::Dollar("H".into()),
                TokenKind::RBrace,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("$").is_err());
        assert!(tokenize("\"abc").is_err());
        assert!(tokenize("!x").is_err());
        assert!(tokenize("#").is_err());
    }
}
