//! # mix-xmas — the XMAS query language
//!
//! XMAS (*XML Matching And Structuring language*, paper §1/§3) is MIX's
//! declarative query and view-definition language, in the family of
//! XML-QL and Lorel. A query has a `CONSTRUCT` head describing how the
//! answer document is built and a `WHERE` body of *generalized path
//! expression* conditions that generate variable bindings:
//!
//! ```text
//! CONSTRUCT <answer>
//!             <med_home> $H
//!               $S {$S}
//!             </med_home> {$H}
//!           </answer> {}
//! WHERE   homesSrc homes.home $H AND $H zip._ $V1
//!   AND   schoolsSrc schools.school $S AND $S zip._ $V2
//!   AND   $V1 = $V2
//! ```
//!
//! (the paper's Figure 3, reproduced verbatim in this crate's tests).
//!
//! Unlike most contemporaries that relied on Skolem functions for grouping,
//! XMAS uses *explicit group-by* annotations (`{$H}`, `{}`), which is what
//! makes the direct translation into the XMAS algebra possible (§1).
//!
//! This crate contains the surface syntax: [`ast`], [`lexer`], [`parser`],
//! and generalized [`path`] expressions compiled to NFAs ([`nfa`]). The
//! algebra and the translation live in `mix-algebra`.

pub mod ast;
pub mod lexer;
pub mod nfa;
pub mod parser;
pub mod path;

pub use ast::{Condition, HeadElem, HeadItem, LabelSpec, Operand, Query, Var};
pub use nfa::{Nfa, StateSet};
pub use parser::parse_query;
pub use path::{parse_path, PathExpr};

/// Errors from XMAS parsing and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmasError {
    /// Byte offset in the query text (when known).
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl XmasError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        XmasError { offset, message: message.into() }
    }
}

impl std::fmt::Display for XmasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XMAS error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmasError {}
