//! Thompson-construction NFAs for generalized path expressions.
//!
//! The lazy `getDescendants` operator matches a path expression while
//! navigating *downwards only* (`d`/`r` commands), so it simulates the NFA
//! along each root-to-node label sequence. [`StateSet`]s are small sorted
//! vectors; the typical path has a handful of states.

use crate::path::PathExpr;
use mix_xml::Label;

/// A set of NFA states, kept sorted and deduplicated.
pub type StateSet = Vec<u32>;

#[derive(Debug, Clone, Default)]
struct State {
    /// ε-transitions.
    eps: Vec<u32>,
    /// Label transitions: `(test, target)`.
    trans: Vec<(StepTest, u32)>,
}

/// The test on one label step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StepTest {
    /// Matches exactly this label.
    Label(String),
    /// `_` — matches any label.
    Any,
}

/// A compiled path-expression NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: u32,
    accept: u32,
}

impl Nfa {
    /// Compile a path expression.
    pub fn compile(expr: &PathExpr) -> Nfa {
        let mut nfa = Nfa { states: Vec::new(), start: 0, accept: 0 };
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        nfa.build(expr, start, accept);
        nfa
    }

    fn new_state(&mut self) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(State::default());
        id
    }

    fn build(&mut self, expr: &PathExpr, from: u32, to: u32) {
        match expr {
            PathExpr::Label(l) => {
                self.states[from as usize].trans.push((StepTest::Label(l.clone()), to));
            }
            PathExpr::Wildcard => {
                self.states[from as usize].trans.push((StepTest::Any, to));
            }
            PathExpr::Seq(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() { to } else { self.new_state() };
                    self.build(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.states[from as usize].eps.push(to);
                }
            }
            PathExpr::Alt(parts) => {
                for p in parts {
                    self.build(p, from, to);
                }
            }
            PathExpr::Star(inner) => {
                let s = self.new_state();
                self.states[from as usize].eps.push(s);
                self.states[s as usize].eps.push(to);
                let t = self.new_state();
                self.build(inner, s, t);
                self.states[t as usize].eps.push(s);
            }
        }
    }

    /// The ε-closed start state set.
    pub fn start_set(&self) -> StateSet {
        let mut set = vec![self.start];
        self.close(&mut set);
        set
    }

    /// Advance a state set over one label; returns the ε-closed result
    /// (possibly empty — a dead end).
    pub fn step(&self, set: &StateSet, label: &Label) -> StateSet {
        let mut out: StateSet = Vec::new();
        for &s in set {
            for (test, target) in &self.states[s as usize].trans {
                let hit = match test {
                    StepTest::Any => true,
                    StepTest::Label(l) => label.as_str() == l,
                };
                if hit && !out.contains(target) {
                    out.push(*target);
                }
            }
        }
        self.close(&mut out);
        out.sort_unstable();
        out
    }

    /// ε-close a state set in place.
    fn close(&self, set: &mut StateSet) {
        let mut i = 0;
        while i < set.len() {
            let s = set[i];
            for &e in &self.states[s as usize].eps {
                if !set.contains(&e) {
                    set.push(e);
                }
            }
            i += 1;
        }
        set.sort_unstable();
    }

    /// True when the set contains the accepting state — the node reached by
    /// the label sequence so far is a match.
    pub fn is_accepting(&self, set: &StateSet) -> bool {
        set.binary_search(&self.accept).is_ok()
    }

    /// True when at least one transition leaves the set — descending
    /// further might still produce matches. The lazy `getDescendants`
    /// prunes its DFS on `!can_continue`.
    pub fn can_continue(&self, set: &StateSet) -> bool {
        set.iter().any(|&s| !self.states[s as usize].trans.is_empty())
    }

    /// The set of labels that can advance this state set, or `None` when a
    /// wildcard transition leaves it (any label advances). Used by the
    /// lazy `getDescendants` to translate sibling scans into `select_φ`
    /// commands when the navigation set `NC` provides them (§2).
    pub fn label_frontier(&self, set: &StateSet) -> Option<Vec<String>> {
        let mut labels: Vec<String> = Vec::new();
        for &s in set {
            for (test, _) in &self.states[s as usize].trans {
                match test {
                    StepTest::Any => return None,
                    StepTest::Label(l) => {
                        if !labels.contains(l) {
                            labels.push(l.clone());
                        }
                    }
                }
            }
        }
        Some(labels)
    }

    /// Match a complete label sequence end to end.
    pub fn matches(&self, labels: &[Label]) -> bool {
        let mut set = self.start_set();
        for l in labels {
            set = self.step(&set, l);
            if set.is_empty() {
                return false;
            }
        }
        self.is_accepting(&set)
    }

    /// Number of states (for plan cost heuristics / tests).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;

    fn nfa(s: &str) -> Nfa {
        Nfa::compile(&parse_path(s).unwrap())
    }

    fn labels(words: &[&str]) -> Vec<Label> {
        words.iter().map(Label::new).collect()
    }

    #[test]
    fn single_label() {
        let n = nfa("home");
        assert!(n.matches(&labels(&["home"])));
        assert!(!n.matches(&labels(&["school"])));
        assert!(!n.matches(&labels(&[])));
        assert!(!n.matches(&labels(&["home", "home"])));
    }

    #[test]
    fn sequence_matches_paper_paths() {
        let n = nfa("homes.home");
        assert!(n.matches(&labels(&["homes", "home"])));
        assert!(!n.matches(&labels(&["homes"])));
        let z = nfa("zip._");
        assert!(z.matches(&labels(&["zip", "91220"])));
        assert!(z.matches(&labels(&["zip", "anything"])));
        assert!(!z.matches(&labels(&["zap", "91220"])));
    }

    #[test]
    fn alternation() {
        let n = nfa("home|apartment");
        assert!(n.matches(&labels(&["home"])));
        assert!(n.matches(&labels(&["apartment"])));
        assert!(!n.matches(&labels(&["condo"])));
    }

    #[test]
    fn star_zero_or_more() {
        let n = nfa("section*.title");
        assert!(n.matches(&labels(&["title"])));
        assert!(n.matches(&labels(&["section", "title"])));
        assert!(n.matches(&labels(&["section", "section", "section", "title"])));
        assert!(!n.matches(&labels(&["section", "section"])));
    }

    #[test]
    fn star_of_alternation() {
        let n = nfa("(a|b)*.c");
        assert!(n.matches(&labels(&["c"])));
        assert!(n.matches(&labels(&["a", "b", "a", "c"])));
        assert!(!n.matches(&labels(&["a", "x", "c"])));
    }

    #[test]
    fn incremental_stepping_and_pruning() {
        let n = nfa("homes.home");
        let s0 = n.start_set();
        assert!(!n.is_accepting(&s0));
        assert!(n.can_continue(&s0));

        let s1 = n.step(&s0, &Label::new("homes"));
        assert!(!s1.is_empty());
        assert!(!n.is_accepting(&s1));
        assert!(n.can_continue(&s1));

        let s2 = n.step(&s1, &Label::new("home"));
        assert!(n.is_accepting(&s2));
        // Accepting state of a fixed path has no outgoing transitions:
        // DFS below the match is pruned.
        assert!(!n.can_continue(&s2));

        let dead = n.step(&s0, &Label::new("schools"));
        assert!(dead.is_empty());
    }

    #[test]
    fn recursive_path_keeps_continuing() {
        let n = nfa("part*");
        let s0 = n.start_set();
        assert!(n.is_accepting(&s0)); // zero repetitions: start matches
        let s1 = n.step(&s0, &Label::new("part"));
        assert!(n.is_accepting(&s1));
        assert!(n.can_continue(&s1)); // could descend further
    }

    #[test]
    fn wildcard_star_matches_everything_nonempty_or_empty() {
        let n = nfa("_*");
        assert!(n.matches(&labels(&[])));
        assert!(n.matches(&labels(&["a", "b", "c"])));
    }
}
