//! Property tests: the Thompson NFA agrees with a naive recursive
//! matcher on random path expressions and label sequences, and the
//! incremental `step` interface is consistent with whole-sequence
//! matching.

use mix_xmas::path::PathExpr;
use mix_xmas::Nfa;
use mix_xml::Label;
use proptest::prelude::*;

/// Ground-truth matcher by structural recursion.
fn naive_matches(e: &PathExpr, labels: &[&str]) -> bool {
    match e {
        PathExpr::Label(l) => labels.len() == 1 && labels[0] == l,
        PathExpr::Wildcard => labels.len() == 1,
        PathExpr::Seq(parts) => {
            fn seq(parts: &[PathExpr], labels: &[&str]) -> bool {
                match parts.first() {
                    None => labels.is_empty(),
                    Some(p) => (0..=labels.len()).any(|k| {
                        naive_matches(p, &labels[..k]) && seq(&parts[1..], &labels[k..])
                    }),
                }
            }
            seq(parts, labels)
        }
        PathExpr::Alt(parts) => parts.iter().any(|p| naive_matches(p, labels)),
        PathExpr::Star(inner) => {
            if labels.is_empty() {
                return true;
            }
            // Try every non-empty split of a first repetition.
            (1..=labels.len()).any(|k| {
                naive_matches(inner, &labels[..k])
                    && naive_matches(e, &labels[k..])
            })
        }
    }
}

fn arb_path() -> impl Strategy<Value = PathExpr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(|l| PathExpr::Label(l.to_string())),
        Just(PathExpr::Wildcard),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(PathExpr::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(PathExpr::Alt),
            inner.prop_map(|e| PathExpr::Star(Box::new(e))),
        ]
    })
}

fn arb_labels() -> impl Strategy<Value = Vec<&'static str>> {
    proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")], 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn nfa_agrees_with_naive_matcher(e in arb_path(), labels in arb_labels()) {
        let nfa = Nfa::compile(&e);
        let owned: Vec<Label> = labels.iter().map(Label::new).collect();
        prop_assert_eq!(nfa.matches(&owned), naive_matches(&e, &labels),
            "path {} on {:?}", e, labels);
    }

    #[test]
    fn stepping_equals_whole_sequence(e in arb_path(), labels in arb_labels()) {
        let nfa = Nfa::compile(&e);
        let mut set = nfa.start_set();
        let mut alive = true;
        for l in &labels {
            set = nfa.step(&set, &Label::new(l));
            if set.is_empty() {
                alive = false;
                break;
            }
        }
        let owned: Vec<Label> = labels.iter().map(Label::new).collect();
        prop_assert_eq!(alive && nfa.is_accepting(&set), nfa.matches(&owned));
    }

    #[test]
    fn display_parse_roundtrip_preserves_semantics(e in arb_path(), labels in arb_labels()) {
        // The printed form may re-associate, so compare by behavior.
        let reparsed = mix_xmas::parse_path(&e.to_string()).expect("display parses");
        let owned: Vec<Label> = labels.iter().map(Label::new).collect();
        prop_assert_eq!(
            Nfa::compile(&e).matches(&owned),
            Nfa::compile(&reparsed).matches(&owned),
            "path {}", e
        );
    }

    #[test]
    fn dead_states_never_resurrect(e in arb_path(), labels in arb_labels()) {
        let nfa = Nfa::compile(&e);
        let mut set = nfa.start_set();
        for l in &labels {
            let next = nfa.step(&set, &Label::new(l));
            if set.is_empty() {
                prop_assert!(next.is_empty());
            }
            set = next;
        }
    }
}
