//! Parser robustness: arbitrary printable input must produce `Ok` or a
//! positioned error — never a panic — for every surface parser.

use mix_xmas::{parse_path, parse_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn query_parser_never_panics(s in "[ -~\\n\\t]{0,200}") {
        let _ = parse_query(&s);
    }

    #[test]
    fn path_parser_never_panics(s in "[ -~]{0,80}") {
        let _ = parse_path(&s);
    }

    #[test]
    fn query_parser_handles_tag_like_noise(s in "[<>$/{}()=!%.*|_a-z0-9 ]{0,150}") {
        let _ = parse_query(&s);
    }

    #[test]
    fn errors_carry_positions_within_input(s in "[ -~]{1,100}") {
        if let Err(e) = parse_query(&s) {
            prop_assert!(e.offset <= s.len(), "offset {} in input of {}", e.offset, s.len());
        }
    }
}
