//! # mix — navigation-driven evaluation of virtual mediated views
//!
//! A Rust reproduction of the MIX mediator system (Ludäscher,
//! Papakonstantinou, Velikhov: *Navigation-Driven Evaluation of Virtual
//! Mediated Views*, EDBT 2000).
//!
//! The client poses a [XMAS](xmas) query over heterogeneous sources and
//! receives a **virtual XML document**: nothing is computed until the
//! client navigates into it with a subset of the DOM API. Each algebra
//! operator of the evaluation plan is a *lazy mediator* translating
//! incoming navigations into minimal navigations on its inputs; a buffer
//! component with *open trees* and the LXP fragment protocol reconciles
//! fine-grained navigation with coarse-grained real sources.
//!
//! ## Quickstart
//!
//! ```
//! use mix::prelude::*;
//!
//! // 1. Register sources (here: in-memory documents; LXP-wrapped
//! //    relational / web / OODB sources work the same way).
//! let mut sources = SourceRegistry::new();
//! sources.add_term(
//!     "homesSrc",
//!     "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]",
//! );
//! sources.add_term(
//!     "schoolsSrc",
//!     "schools[school[dir[Smith],zip[91220]],school[dir[Hart],zip[91223]]]",
//! );
//!
//! // 2. Parse the paper's Figure 3 query and translate it to an algebra
//! //    plan (Figure 4).
//! let query = parse_query(
//!     "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
//!      WHERE homesSrc homes.home $H AND $H zip._ $V1
//!        AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
//! )
//! .unwrap();
//! let plan = translate(&query).unwrap();
//!
//! // 3. Wire the plan to the sources — no source access happens here.
//! let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());
//!
//! // 4. Navigate the virtual answer; data is pulled on demand.
//! let root = doc.root();
//! assert_eq!(root.label(), "answer");
//! let first = root.down().unwrap();
//! assert_eq!(first.child("home").unwrap().child("addr").unwrap().text(), "La Jolla");
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`xml`] | `mix-xml` | labeled ordered trees, term/XML syntax, arena documents |
//! | [`nav`] | `mix-nav` | DOM-VXD navigation (`d`/`r`/`f`/`select`), counting, programs |
//! | [`xmas`] | `mix-xmas` | the XMAS query language and path expressions |
//! | [`algebra`] | `mix-algebra` | plans, XMAS→algebra translation, rewriting, browsability |
//! | [`core`] | `mix-core` | the lazy mediator engine, eager baseline, client library |
//! | [`buffer`] | `mix-buffer` | open trees, holes, LXP, the generic buffer component |
//! | [`relational`] | `mix-relational` | in-memory RDBMS substrate |
//! | [`wrappers`] | `mix-wrappers` | relational/web/OODB wrappers + workload generators |
//! | [`serve`] | `mix-serve` | session-multiplexed VXD server/client, DOM-VXD frame codec |

pub use mix_algebra as algebra;
pub use mix_buffer as buffer;
pub use mix_core as core;
pub use mix_nav as nav;
pub use mix_relational as relational;
pub use mix_serve as serve;
pub use mix_wrappers as wrappers;
pub use mix_xmas as xmas;
pub use mix_xml as xml;

/// The common imports for applications.
pub mod prelude {
    pub use mix_algebra::{
        classify, compose, rewrite::rewrite, translate, Browsability, NcCapabilities, Plan,
    };
    pub use mix_buffer::{
        configured_threads, BufferNavigator, ConcurrentPrefetcher, FaultConfig, FaultyWrapper,
        FillPolicy, FragmentCache, HealthStatus, MetricsRegistry, MetricsSnapshot, OverlapGauge,
        RetryPolicy, SlowWrapper, TreeWrapper,
    };
    pub use mix_core::{
        eager, Degraded, Engine, EngineConfig, PromText, SemanticOutcome, SourceRegistry,
        TraceKind, TraceLog, TraceSink, ViewCatalog, VirtualDocument, VirtualElement,
    };
    pub use mix_nav::{explore::materialize, LabelPred, Navigator};
    pub use mix_serve::{SessionSources, VxdClient, VxdServer};
    pub use mix_xmas::{parse_path, parse_query};
    pub use mix_xml::{term::parse_term, Document, Label, Tree};
}
