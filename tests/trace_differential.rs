//! Property-based differential testing of the flight recorder: tracing is
//! pure observation. On randomly generated documents, queries, and partial
//! navigation programs, a traced engine and an untraced engine must produce
//! byte-identical answers and identical wire traffic — and on top of that
//! the traced run's rollup must reconcile exactly with its own counters.

use mix::prelude::*;
use mix::wrappers::gen::random_tree;
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "x"];

/// Queries exercising different operator cascades over one source `src`.
fn query_pool() -> Vec<&'static str> {
    vec![
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src (a|b)._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a*.b $V",
        "CONSTRUCT <out> $W {$W} </out> {} WHERE src _._ $V AND $V a $W",
        r#"CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V AND $V _ $W AND $W = "a""#,
        "CONSTRUCT <out> <g> $W $V {$V} </g> {$W} </out> {} \
         WHERE src _._ $V AND $V _ $W",
        "CONSTRUCT <out> <p> $V $W {$W} </p> {$V} </out> {} \
         WHERE src _._ $V AND src _._ $W AND $V = $W",
    ]
}

/// Build an engine over a buffered, chunk-filling wrapper for `tree`.
/// With `traced`, the buffer and the engine share one recorder sink.
fn build(tree: &Tree, query: &str, chunk: usize, traced: bool) -> VirtualDocument {
    let plan = translate(&parse_query(query).unwrap()).unwrap();
    let nav = BufferNavigator::new(
        TreeWrapper::single(tree, FillPolicy::Chunked { n: chunk }),
        "doc",
    );
    let mut reg = SourceRegistry::new();
    if traced {
        let sink = TraceSink::enabled(1 << 18);
        let nav = nav.with_trace(sink.clone());
        let (health, stats) = (nav.health(), nav.stats());
        reg.add_navigator_traced("src", nav, health, stats, sink);
    } else {
        let (health, stats) = (nav.health(), nav.stats());
        reg.add_navigator_with_stats("src", nav, health, stats);
    }
    VirtualDocument::new(Engine::new(plan, &reg).unwrap())
}

fn traffic_totals(doc: &VirtualDocument) -> (u64, u64, u64) {
    let mut t = (0, 0, 0);
    for (_, snap) in doc.engine().lock().unwrap().traffic() {
        if let Some(s) = snap {
            t.0 += s.requests;
            t.1 += s.batched_holes;
            t.2 += s.wasted_bytes;
        }
    }
    t
}

/// A client-level navigation step.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    Down,
    Right,
    Fetch,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![Just(Cmd::Down), Just(Cmd::Right), Just(Cmd::Fetch)]
}

/// Run a partial navigation program from the root, restarting from the
/// root when navigation falls off the tree. Returns the observation log.
fn run_program(doc: &VirtualDocument, prog: &[Cmd]) -> Vec<String> {
    let mut log = Vec::new();
    let mut cur = doc.root();
    for cmd in prog {
        match cmd {
            Cmd::Down => match cur.down() {
                Some(next) => cur = next,
                None => {
                    log.push("·d".to_string());
                    cur = doc.root();
                }
            },
            Cmd::Right => match cur.right() {
                Some(next) => cur = next,
                None => {
                    log.push("·r".to_string());
                    cur = doc.root();
                }
            },
            Cmd::Fetch => log.push(cur.label().to_string()),
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tracing_never_changes_the_materialized_answer(
        seed in 0u64..10_000,
        nodes in 1usize..40,
        qidx in 0usize..8,
        chunk in 1usize..6,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];

        let traced = build(&tree, query, chunk, true);
        let plain = build(&tree, query, chunk, false);

        let a = materialize(&mut *traced.engine().lock().unwrap());
        let b = materialize(&mut *plain.engine().lock().unwrap());
        prop_assert_eq!(a.to_string(), b.to_string(), "answers must be byte-identical");

        // Identical command counts and identical wire traffic: the
        // recorder observed the run without perturbing it.
        prop_assert_eq!(traced.stats().total(), plain.stats().total());
        prop_assert_eq!(traffic_totals(&traced), traffic_totals(&plain));

        // And the trace accounts for that traffic exactly.
        let log = traced.trace();
        prop_assert_eq!(log.dropped(), 0);
        prop_assert!(log.rollup().matches_traffic(traffic_totals(&traced)));
    }

    #[test]
    fn tracing_never_changes_partial_navigation(
        seed in 0u64..10_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        prog in proptest::collection::vec(arb_cmd(), 1..40),
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];

        let traced = build(&tree, query, 3, true);
        let plain = build(&tree, query, 3, false);

        let seen_traced = run_program(&traced, &prog);
        let seen_plain = run_program(&plain, &prog);
        prop_assert_eq!(seen_traced, seen_plain);
        prop_assert_eq!(traced.stats().total(), plain.stats().total());
        prop_assert_eq!(traffic_totals(&traced), traffic_totals(&plain));

        // Each client command in the program opened a span.
        let log = traced.trace();
        prop_assert_eq!(log.dropped(), 0);
        prop_assert!(log.spans().len() as usize >= 1);
        prop_assert!(log.rollup().matches_traffic(traffic_totals(&traced)));
    }
}
