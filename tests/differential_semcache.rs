//! Property-based differential testing for the semantic answer cache: on
//! random documents and a structurally diverse query pool, rewriting a
//! plan against recorded views must be *observationally invisible* —
//! byte-identical answers whether the catalog is absent, empty, or warm —
//! while a covered repeat costs zero wire exchanges and invalidation
//! restores both the wire traffic and the identical bytes.

use mix::prelude::*;
use mix::wrappers::gen::random_tree;
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "x"];

/// The same structurally diverse query pool as `tests/differential.rs`.
/// Indices 4 (Kleene star) and 7 (grouped pair) are not recordable-view
/// shapes: the catalog must leave them untouched (identity rewrite).
fn query_pool() -> Vec<&'static str> {
    vec![
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src (a|b)._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a*.b $V",
        "CONSTRUCT <out> $W {$W} </out> {} WHERE src _._ $V AND $V a $W",
        r#"CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V AND $V _ $W AND $W = "a""#,
        "CONSTRUCT <out> <g> $W $V {$V} </g> {$W} </out> {} WHERE src _._ $V AND $V _ $W",
    ]
}

/// Is the pool query at `qidx` a recordable (and self-covering) shape?
fn recordable(qidx: usize) -> bool {
    !matches!(qidx, 4 | 7)
}

/// An engine over `tree` behind a buffered chunked wrapper, optionally
/// faulty, optionally consulting a shared [`ViewCatalog`]. Returns the
/// engine plus the buffer's stats and health handles.
fn sem_engine(
    tree: &mix::xml::Tree,
    query: &str,
    chunk: usize,
    fault: Option<FaultConfig>,
    catalog: Option<ViewCatalog>,
) -> (Engine, mix::buffer::BufferStats, mix::buffer::SourceHealth) {
    let plan = translate(&parse_query(query).unwrap()).unwrap();
    let inner = TreeWrapper::single(tree, FillPolicy::Chunked { n: chunk });
    let policy = if fault.is_some() {
        RetryPolicy { max_attempts: 2, ..RetryPolicy::default() }
    } else {
        RetryPolicy::none()
    };
    let cfg = fault.unwrap_or(FaultConfig::transient(0, 0.0));
    let nav = BufferNavigator::with_retry(FaultyWrapper::new(inner, cfg), "doc", policy);
    let (stats, health) = (nav.stats(), nav.health());
    let mut reg = SourceRegistry::new();
    reg.add_navigator("src", nav);
    let config = match catalog {
        Some(catalog) => {
            reg.set_view_catalog(catalog);
            EngineConfig::semantic_cache()
        }
        None => EngineConfig::default(),
    };
    (Engine::with_config(plan, &reg, config).unwrap(), stats, health)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn rewritten_equals_unrewritten_and_a_covered_repeat_is_zero_wire(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];

        // (a) No catalog at all — the baseline answer.
        let (mut off, _, _) = sem_engine(&tree, query, chunk, None, None);
        let baseline = materialize(&mut off);

        // (b) Empty catalog: a miss, identical answer, then record.
        let catalog = ViewCatalog::new();
        let (mut cold, _, _) =
            sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        prop_assert_eq!(cold.semantic_outcome(), Some(SemanticOutcome::Miss));
        prop_assert_eq!(&materialize(&mut cold), &baseline, "empty-catalog answer differs");
        let recorded = cold.record_view(&baseline);
        prop_assert_eq!(
            recorded, recordable(qidx),
            "recordability disagrees with the pinned query-pool shape"
        );

        // (c) The identical repeat: byte-identical always; covered (and
        // wire-free) exactly when the shape was recordable.
        let (mut warm, warm_stats, _) =
            sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        prop_assert_eq!(&materialize(&mut warm), &baseline, "warm answer differs");
        if recorded {
            prop_assert_eq!(warm.semantic_outcome(), Some(SemanticOutcome::Covered));
            let w = warm_stats.snapshot();
            prop_assert_eq!(w.requests, 0, "covered repeat exchanged wire traffic");
            prop_assert_eq!(w.bytes_received, 0);
        } else {
            prop_assert_eq!(warm.semantic_outcome(), Some(SemanticOutcome::Miss));
        }
    }

    #[test]
    fn semantic_rewrite_is_transparent_under_faults(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
        fault_seed in 1u64..999,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let fault = FaultConfig::transient(fault_seed, 0.25);

        // An empty catalog is an identity rewrite: the same fault
        // schedule produces byte-identical answers AND identical
        // degradation reports, catalog on or off.
        let (mut off, _, off_health) = sem_engine(&tree, query, chunk, Some(fault), None);
        let a = materialize(&mut off);
        let (mut on, _, on_health) =
            sem_engine(&tree, query, chunk, Some(fault), Some(ViewCatalog::new()));
        let b = materialize(&mut on);
        prop_assert_eq!(&a, &b, "the identity rewrite changed the degraded answer");
        let (ha, hb) = (off_health.snapshot(), on_health.snapshot());
        prop_assert_eq!(ha.status, hb.status, "identity rewrite changed the health status");
        prop_assert_eq!(ha.degraded_ops, hb.degraded_ops);
        prop_assert_eq!(ha.retries, hb.retries);

        // A covered query over a wire that fails EVERY exchange is
        // pristine: nothing touches the wire, nothing degrades.
        if recordable(qidx) {
            let catalog = ViewCatalog::new();
            let (mut clean, _, _) =
                sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
            let baseline = materialize(&mut clean);
            prop_assert!(clean.record_view(&baseline));
            let (mut dead, dead_stats, dead_health) = sem_engine(
                &tree, query, chunk, Some(FaultConfig::outage_after(0)),
                Some(catalog.clone()),
            );
            prop_assert_eq!(dead.semantic_outcome(), Some(SemanticOutcome::Covered));
            prop_assert_eq!(
                &materialize(&mut dead), &baseline,
                "covered answer over a dead wire differs"
            );
            prop_assert_eq!(dead_stats.snapshot().requests, 0);
            prop_assert_eq!(dead_health.snapshot().degraded_ops, 0, "the dead wire was felt");
        }
    }

    #[test]
    fn invalidation_purges_views_and_the_refetch_is_byte_identical(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        if !recordable(qidx) {
            return Ok(());
        }

        let catalog = ViewCatalog::new();
        let (mut cold, _, _) = sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        let baseline = materialize(&mut cold);
        prop_assert!(cold.record_view(&baseline));

        let (warm, _, _) = sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        prop_assert_eq!(warm.semantic_outcome(), Some(SemanticOutcome::Covered));

        // Epoch bump: every dependent view is purged; the next session
        // misses, pays the wire again, and re-derives identical bytes.
        prop_assert_eq!(catalog.invalidate_source("src"), 1);
        prop_assert_eq!(catalog.len(), 0, "the dependent view survived invalidation");
        let (mut fresh, fresh_stats, _) =
            sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        prop_assert_eq!(fresh.semantic_outcome(), Some(SemanticOutcome::Miss));
        prop_assert_eq!(&materialize(&mut fresh), &baseline, "post-invalidation differs");
        prop_assert!(fresh_stats.snapshot().requests > 0, "invalidation restored traffic");

        // Re-recording under the new epoch restores coverage.
        prop_assert!(fresh.record_view(&baseline));
        let (again, again_stats, _) =
            sem_engine(&tree, query, chunk, None, Some(catalog.clone()));
        prop_assert_eq!(again.semantic_outcome(), Some(SemanticOutcome::Covered));
        prop_assert_eq!(again_stats.snapshot().requests, 0);
    }
}
