//! Property-based differential testing for the shared cross-query
//! fragment cache: on random documents, queries, and fault schedules, the
//! cache must be *observationally invisible* — byte-identical answers and
//! identical degradation reports with the cache off, cold, warm, or
//! budget-starved — while a warm session costs zero wire exchanges and an
//! invalidated one pays the wire again.

use mix::prelude::*;
use mix::wrappers::gen::random_tree;
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "x"];

/// A slice of the structurally diverse query pool over one source `src`
/// (same shapes as `tests/differential.rs`).
fn query_pool() -> Vec<&'static str> {
    vec![
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src (a|b)._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a*.b $V",
        "CONSTRUCT <out> $W {$W} </out> {} WHERE src _._ $V AND $V a $W",
        r#"CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V AND $V _ $W AND $W = "a""#,
        "CONSTRUCT <out> <g> $W $V {$V} </g> {$W} </out> {} WHERE src _._ $V AND $V _ $W",
    ]
}

/// An engine over `tree` behind a buffered chunked wrapper, optionally
/// faulty, optionally carrying a shared fragment cache. Returns the
/// engine plus the buffer's stats and health handles.
fn cached_engine(
    tree: &mix::xml::Tree,
    query: &str,
    chunk: usize,
    fault: Option<FaultConfig>,
    cache: Option<FragmentCache>,
) -> (Engine, mix::buffer::BufferStats, mix::buffer::SourceHealth) {
    let plan = translate(&parse_query(query).unwrap()).unwrap();
    let inner = TreeWrapper::single(tree, FillPolicy::Chunked { n: chunk });
    let policy = if fault.is_some() {
        RetryPolicy { max_attempts: 2, ..RetryPolicy::default() }
    } else {
        RetryPolicy::none()
    };
    let cfg = fault.unwrap_or(FaultConfig::transient(0, 0.0));
    let mut nav = BufferNavigator::with_retry(FaultyWrapper::new(inner, cfg), "doc", policy);
    if let Some(cache) = cache {
        nav = nav.with_fragment_cache(cache);
    }
    let (stats, health) = (nav.stats(), nav.health());
    let mut reg = SourceRegistry::new();
    reg.add_navigator("src", nav);
    (Engine::new(plan, &reg).unwrap(), stats, health)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cached_equals_uncached_and_warm_is_free(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];

        // (a) No cache at all — the baseline answer.
        let (mut off, _, _) = cached_engine(&tree, query, chunk, None, None);
        let baseline = materialize(&mut off);

        // (b) Cold cache-on session: identical answer, fills the cache.
        let cache = FragmentCache::new();
        let (mut cold, cold_stats, _) =
            cached_engine(&tree, query, chunk, None, Some(cache.clone()));
        prop_assert_eq!(&materialize(&mut cold), &baseline, "cold cache-on differs");
        let paid = cold_stats.snapshot().requests;
        prop_assert!(paid > 0, "the cold session paid the wire");

        // (c) Warm session sharing the cache: identical answer, ZERO wire.
        let (mut warm, warm_stats, _) =
            cached_engine(&tree, query, chunk, None, Some(cache.clone()));
        prop_assert_eq!(&materialize(&mut warm), &baseline, "warm answer differs");
        let w = warm_stats.snapshot();
        prop_assert_eq!(w.requests, 0, "warm session exchanged wire traffic");
        prop_assert_eq!(w.get_roots, 0, "warm session re-fetched the root");
        prop_assert_eq!(w.bytes_received, 0);

        // (d) Budget-starved cache: admits nothing, changes nothing.
        let starved = FragmentCache::with_budget(0);
        let (mut tiny, tiny_stats, _) =
            cached_engine(&tree, query, chunk, None, Some(starved.clone()));
        prop_assert_eq!(&materialize(&mut tiny), &baseline, "starved cache differs");
        prop_assert_eq!(starved.len(), 0, "zero budget admitted entries");
        prop_assert!(tiny_stats.snapshot().requests > 0, "starved session pays the wire");
    }

    #[test]
    fn cache_is_transparent_under_faults(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
        fault_seed in 1u64..999,
    ) {
        // A fresh cache never changes the wire sequence of a first
        // session, so the same fault schedule produces byte-identical
        // answers AND identical degradation reports, cache on or off.
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let fault = FaultConfig::transient(fault_seed, 0.25);

        let (mut off, _, off_health) = cached_engine(&tree, query, chunk, Some(fault), None);
        let a = materialize(&mut off);

        let (mut on, _, on_health) = cached_engine(
            &tree, query, chunk, Some(fault), Some(FragmentCache::new()),
        );
        let b = materialize(&mut on);

        prop_assert_eq!(a, b, "cache changed the degraded answer");
        let (ha, hb) = (off_health.snapshot(), on_health.snapshot());
        prop_assert_eq!(ha.status, hb.status, "cache changed the health status");
        prop_assert_eq!(ha.degraded_ops, hb.degraded_ops, "cache changed the degradations");
        prop_assert_eq!(ha.retries, hb.retries, "cache changed the retry count");
    }

    #[test]
    fn warm_session_survives_a_dead_wire_and_invalidation_restores_traffic(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..8,
        chunk in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];

        // Cold session over a clean wire fills the cache.
        let cache = FragmentCache::new();
        let (mut cold, _, _) = cached_engine(&tree, query, chunk, None, Some(cache.clone()));
        let baseline = materialize(&mut cold);

        // Warm session over a wire that fails EVERY exchange: the answer
        // is pristine and nothing degrades, because nothing touches the
        // wire.
        let (mut warm, warm_stats, warm_health) = cached_engine(
            &tree, query, chunk, Some(FaultConfig::outage_after(0)), Some(cache.clone()),
        );
        prop_assert_eq!(&materialize(&mut warm), &baseline, "warm over dead wire differs");
        prop_assert_eq!(warm_stats.snapshot().requests, 0);
        prop_assert_eq!(warm_health.snapshot().degraded_ops, 0, "the dead wire was felt");

        // After invalidating the source, the next session pays the wire
        // again — and still computes the identical answer.
        let (entries, _) = cache.invalidate("doc");
        prop_assert!(entries > 0, "invalidation dropped the cached fragments");
        let (mut fresh, fresh_stats, _) =
            cached_engine(&tree, query, chunk, None, Some(cache.clone()));
        prop_assert_eq!(&materialize(&mut fresh), &baseline, "post-invalidate differs");
        prop_assert!(fresh_stats.snapshot().requests > 0, "invalidation restored traffic");
    }
}
