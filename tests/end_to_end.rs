//! End-to-end integration: XMAS text → algebra plan → lazy mediator tree →
//! client navigation, over all three wrapper families (relational, web,
//! OODB) and plain documents.

use mix::prelude::*;
use mix::wrappers::gen;
use mix::wrappers::{Network, ObjectStore, OodbWrapper, RelationalWrapper, WebWrapper};

#[test]
fn figure_3_over_plain_documents() {
    let mut sources = SourceRegistry::new();
    sources.add_term(
        "homesSrc",
        "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]",
    );
    sources.add_term(
        "schoolsSrc",
        "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],\
         school[dir[Hart],zip[91223]]]",
    );
    let q = parse_query(
        "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
         WHERE homesSrc homes.home $H AND $H zip._ $V1 \
           AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
    )
    .unwrap();
    let plan = translate(&q).unwrap();
    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());
    let root = doc.root();
    let names: Vec<String> = root
        .children()
        .map(|mh| mh.down().unwrap().child("addr").unwrap().text())
        .collect();
    assert_eq!(names, ["La Jolla", "El Cajon"]);
}

#[test]
fn xmas_over_the_relational_wrapper() {
    // realestate.homes as a real database behind the LXP wrapper.
    let db = gen::homes_database(11, 500, 20);
    let buffered = BufferNavigator::new(RelationalWrapper::new(db, 50), "realestate");
    let stats = buffered.stats();
    let mut sources = SourceRegistry::new();
    sources.add_navigator("realestate", buffered);

    let q = parse_query(
        r#"CONSTRUCT <cheap> $R {$R} </cheap> {}
           WHERE realestate realestate.homes.row $R AND $R price._ $P AND $P < 350000"#,
    )
    .unwrap();
    let plan = translate(&q).unwrap();
    let doc = VirtualDocument::new(Engine::new(plan.clone(), &sources).unwrap());

    // First hit arrives after a handful of fills.
    let first = doc.root().down().expect("at least one cheap home");
    let price: i64 = first.child("price").unwrap().text().parse().unwrap();
    assert!(price < 350_000);
    assert!(stats.snapshot().fills < 6, "only a few chunks pulled: {:?}", stats.snapshot());

    // The full lazy answer equals the eager answer over a fresh wrapper.
    let db2 = gen::homes_database(11, 500, 20);
    let mut sources2 = SourceRegistry::new();
    sources2
        .add_navigator("realestate", BufferNavigator::new(RelationalWrapper::new(db2, 50), "realestate"));
    let expected = eager::eval(&plan, &sources2).unwrap();
    assert_eq!(doc.root().to_tree(), expected);
}

#[test]
fn xmas_over_the_web_wrapper() {
    let network = Network::new(10, 1);
    let mut site = WebWrapper::with_policy(network.clone(), FillPolicy::Chunked { n: 10 });
    site.add_page("amazon", &gen::bookstore_doc(3, "amazon", 120));
    let mut sources = SourceRegistry::new();
    sources.add_navigator("amazon", BufferNavigator::new(site, "amazon"));

    let q = parse_query(
        r#"CONSTRUCT <cheap_books> $T {$T} </cheap_books> {}
           WHERE amazon books.book $B AND $B title._ $T AND $B price._ $P AND $P < 40"#,
    )
    .unwrap();
    let plan = translate(&q).unwrap();
    let mut engine = Engine::new(plan, &sources).unwrap();
    let answer = materialize(&mut engine);
    assert_eq!(answer.label(), "cheap_books");
    assert!(!answer.children().is_empty());
    assert!(network.stats().requests > 0);
}

#[test]
fn xmas_over_the_oodb_wrapper() {
    let mut store = ObjectStore::new();
    let dept = store.create("department");
    store.set_attr(dept, "name", "databases");
    for (name, title) in [("Alice", "phd"), ("Bob", "ms"), ("Carol", "phd")] {
        let p = store.create("person");
        store.set_attr(p, "name", name);
        store.set_attr(p, "title", title);
        store.add_ref(dept, "member", p);
    }
    store.publish("hr", dept);
    let mut sources = SourceRegistry::new();
    sources.add_navigator("hr", BufferNavigator::new(OodbWrapper::new(store), "hr"));

    let q = parse_query(
        r#"CONSTRUCT <phds> $N {$N} </phds> {}
           WHERE hr department.member.person $P AND $P name._ $N
             AND $P title._ $T AND $T = "phd""#,
    )
    .unwrap();
    let plan = translate(&q).unwrap();
    let mut engine = Engine::new(plan, &sources).unwrap();
    let answer = materialize(&mut engine);
    assert_eq!(answer.to_string(), "phds[Alice,Carol]");
}

#[test]
fn heterogeneous_join_across_wrapper_families() {
    // Join a relational source with a plain-document source — the Figure 1
    // architecture in one query.
    let db = gen::homes_database(13, 100, 5);
    let mut sources = SourceRegistry::new();
    sources.add_navigator(
        "realestate",
        BufferNavigator::new(RelationalWrapper::new(db, 25), "realestate"),
    );
    sources.add_tree("schoolsSrc", &gen::schools_doc(14, 50, 5));

    let q = parse_query(
        r#"CONSTRUCT <matches> <m> $Z $D {$D} </m> {$Z} </matches> {}
           WHERE realestate realestate.homes.row $R AND $R zip._ $Z
             AND schoolsSrc schools.school $S AND $S zip._ $Z2 AND $S dir._ $D
             AND $Z = $Z2"#,
    )
    .unwrap();
    let plan = translate(&q).unwrap();

    let mut engine = Engine::new(plan.clone(), &sources).unwrap();
    let lazy = materialize(&mut engine);

    // Against the eager oracle over fresh sources.
    let db2 = gen::homes_database(13, 100, 5);
    let mut sources2 = SourceRegistry::new();
    sources2.add_navigator(
        "realestate",
        BufferNavigator::new(RelationalWrapper::new(db2, 25), "realestate"),
    );
    sources2.add_tree("schoolsSrc", &gen::schools_doc(14, 50, 5));
    let expected = eager::eval(&plan, &sources2).unwrap();
    assert_eq!(lazy, expected);
    assert!(!lazy.children().is_empty(), "the join produced matches");
}

#[test]
fn rewriting_then_lazy_execution_stays_correct() {
    let mut sources = SourceRegistry::new();
    sources.add_tree("homesSrc", &gen::homes_doc(5, 80, 8));
    sources.add_tree("schoolsSrc", &gen::schools_doc(6, 80, 8));
    let q = parse_query(
        r#"CONSTRUCT <out> <m> $H $S {$S} </m> {$H} </out> {}
           WHERE homesSrc homes.home $H AND $H zip._ $V1
             AND schoolsSrc schools.school $S AND $S zip._ $V2
             AND $V1 = $V2 AND $H price._ $P AND $P < 600000"#,
    )
    .unwrap();
    let initial = translate(&q).unwrap();
    let mut rewritten = initial.clone();
    rewrite(&mut rewritten, NcCapabilities::minimal());

    let expected = eager::eval(&initial, &sources).unwrap();
    let mut sources2 = SourceRegistry::new();
    sources2.add_tree("homesSrc", &gen::homes_doc(5, 80, 8));
    sources2.add_tree("schoolsSrc", &gen::schools_doc(6, 80, 8));
    let mut engine = Engine::new(rewritten, &sources2).unwrap();
    assert_eq!(materialize(&mut engine), expected);
}

#[test]
fn mediator_stacking_three_levels() {
    // wrapper → mediator → mediator (Figure 1's m_q1 over m_q2).
    let mut base = SourceRegistry::new();
    base.add_tree("homesSrc", &gen::homes_doc(21, 30, 3));

    let zips_view = translate(
        &parse_query(
            "CONSTRUCT <zips> $Z {$Z} </zips> {} \
             WHERE homesSrc homes.home $H AND $H zip._ $Z",
        )
        .unwrap(),
    )
    .unwrap();
    let level1 = Engine::new(zips_view, &base).unwrap();

    let mut mid = SourceRegistry::new();
    mid.add_navigator("zipsView", level1);
    let distinct_view = translate(
        &parse_query(
            "CONSTRUCT <distinct> <z> $Z </z> {$Z} </distinct> {} \
             WHERE zipsView zips._ $Z",
        )
        .unwrap(),
    )
    .unwrap();
    let level2 = Engine::new(distinct_view, &mid).unwrap();

    let mut top = SourceRegistry::new();
    top.add_navigator("distinctView", level2);
    let count_view = translate(
        &parse_query(
            "CONSTRUCT <out> $Z {$Z} </out> {} WHERE distinctView distinct.z._ $Z",
        )
        .unwrap(),
    )
    .unwrap();
    let mut level3 = Engine::new(count_view, &top).unwrap();
    let answer = materialize(&mut level3);

    // 3 distinct zips, deduplicated by the middle mediator's groupBy.
    assert_eq!(answer.label(), "out");
    assert_eq!(answer.children().len(), 3);
}

#[test]
fn composition_equals_stacking() {
    // §3 preprocessing: the composed plan q′ ∘ q over base sources must
    // answer exactly like a mediator stacked over the view's mediator.
    let view_q = parse_query(
        "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
         WHERE homesSrc homes.home $H AND $H zip._ $V1 \
           AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
    )
    .unwrap();
    let view = translate(&view_q).unwrap();
    let query = translate(
        &parse_query(
            "CONSTRUCT <zips> $Z {$Z} </zips> {} \
             WHERE medview answer.med_home.home.zip._ $Z",
        )
        .unwrap(),
    )
    .unwrap();

    let mk_base = || {
        let mut reg = SourceRegistry::new();
        reg.add_tree("homesSrc", &gen::homes_doc(33, 40, 6));
        reg.add_tree("schoolsSrc", &gen::schools_doc(34, 40, 6));
        reg
    };

    // (a) Stacked: engine over engine.
    let lower = Engine::new(view.clone(), &mk_base()).unwrap();
    let mut upper_reg = SourceRegistry::new();
    upper_reg.add_navigator("medview", lower);
    let mut stacked = Engine::new(query.clone(), &upper_reg).unwrap();
    let stacked_answer = materialize(&mut stacked);

    // (b) Composed: one plan over the base sources.
    let composed = mix::algebra::compose(&query, "medview", &view).unwrap();
    assert_eq!(composed.source_names().len(), 2);
    let mut one = Engine::new(composed, &mk_base()).unwrap();
    let composed_answer = materialize(&mut one);

    assert_eq!(stacked_answer, composed_answer);
    assert!(!composed_answer.children().is_empty());

    // (c) And both agree with the eager oracle on the composed plan.
    let composed2 = mix::algebra::compose(&query, "medview", &view).unwrap();
    let oracle = eager::eval(&composed2, &mk_base()).unwrap();
    assert_eq!(oracle, composed_answer);
}

#[test]
fn auction_site_queries() {
    // A deeper, more heterogeneous document (XMark-style): recursive
    // description paths and grouped bid histories.
    let mut sources = SourceRegistry::new();
    sources.add_tree("auction", &gen::auction_doc(8, 30, 6));

    // All bid amounts over 900, grouped by bidder.
    let q = parse_query(
        r#"CONSTRUCT <big_spenders> <b> $W $A {$A} </b> {$W} </big_spenders> {}
           WHERE auction site.items.item.bids.bid $B
             AND $B bidder._ $W AND $B amount._ $A AND $A > 900"#,
    )
    .unwrap();
    let plan = translate(&q).unwrap();
    let expected = eager::eval(&plan, &sources).unwrap();
    let mut sources2 = SourceRegistry::new();
    sources2.add_tree("auction", &gen::auction_doc(8, 30, 6));
    let mut e = Engine::new(plan, &sources2).unwrap();
    assert_eq!(materialize(&mut e), expected);

    // Recursive text extraction below descriptions.
    let q2 = parse_query(
        "CONSTRUCT <texts> $T {$T} </texts> {} \
         WHERE auction site.items.item.description.parlist*.text._ $T",
    )
    .unwrap();
    let plan2 = translate(&q2).unwrap();
    let mut sources3 = SourceRegistry::new();
    sources3.add_tree("auction", &gen::auction_doc(8, 30, 6));
    let expected2 = eager::eval(&plan2, &sources3).unwrap();
    let mut sources4 = SourceRegistry::new();
    sources4.add_tree("auction", &gen::auction_doc(8, 30, 6));
    let mut e2 = Engine::new(plan2, &sources4).unwrap();
    let got2 = materialize(&mut e2);
    assert_eq!(got2, expected2);
    assert!(!got2.children().is_empty());
}
