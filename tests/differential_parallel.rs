//! Property-based differential testing of the concurrent engine: the
//! parallel paths — per-source warm-up exchanges and background prefetch
//! workers — must be pure *scheduling* changes. On randomly generated
//! documents and multi-source queries, a parallel run and a sequential run
//! must produce byte-identical answers; on full walks they must also
//! report identical per-source command counts and identical wire traffic
//! (the fill-once discipline dedupes everything the concurrent paths
//! front-run); and a traced concurrent run's rollup must still reconcile
//! exactly with its own traffic counters.

use mix::buffer::{ConcurrentPrefetcher, SlowWrapper};
use mix::prelude::*;
use mix::wrappers::gen::random_tree;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LABELS: &[&str] = &["a", "b", "c", "x"];

/// Queries over three sources whose *full* walk provably touches every
/// source: each binds a source root (`_` consumes exactly the root
/// label), so no source can be skipped by an empty binding list and the
/// warm-up's priming work is always a subset of the walk's.
fn total_queries() -> Vec<&'static str> {
    vec![
        "CONSTRUCT <out> <m> $A <n> $B $C {$C} </n> {$B} </m> {$A} </out> {} \
         WHERE s0 _ $A AND s1 _ $B AND s2 _ $C",
        "CONSTRUCT <out> <m> $C <n> $A $B {$B} </n> {$A} </m> {$C} </out> {} \
         WHERE s0 _ $A AND s1 _ $B AND s2 _ $C",
    ]
}

/// Deeper multi-source queries (selections, joins) where a source *can*
/// contribute nothing; used for answer-equivalence only, since the
/// warm-up may then prime fragments a sequential walk never needs.
fn partial_queries() -> Vec<&'static str> {
    vec![
        "CONSTRUCT <out> <m> $A <n> $B $C {$C} </n> {$B} </m> {$A} </out> {} \
         WHERE s0 _._ $A AND s1 _._ $B AND s2 _._ $C",
        "CONSTRUCT <out> <m> $A $B {$B} </m> {$A} </out> {} \
         WHERE s0 _._ $A AND s1 _._ $B AND s2 _._ $C AND $A = $C",
        "CONSTRUCT <out> <g> $W <h> $B {$B} </h> </g> {$W} </out> {} \
         WHERE s0 _._ $V AND $V _ $W AND s1 _._ $B AND s2 _ $C",
    ]
}

/// Build a three-source engine over buffered LXP wrappers, returning the
/// engine plus each source's wrapper-level exchange counter.
fn build(
    trees: &[Tree; 3],
    query: &str,
    threads: usize,
) -> (Engine, Vec<Arc<AtomicU64>>) {
    let plan = translate(&parse_query(query).unwrap()).unwrap();
    let mut reg = SourceRegistry::new();
    let mut wires = Vec::new();
    for (i, tree) in trees.iter().enumerate() {
        let slow = SlowWrapper::new(
            TreeWrapper::single(tree, FillPolicy::NodeAtATime),
            Duration::ZERO,
        );
        wires.push(slow.exchange_counter());
        let nav = BufferNavigator::new(slow, "doc");
        let (health, stats) = (nav.health(), nav.stats());
        reg.add_navigator_with_stats(format!("s{i}"), nav, health, stats);
    }
    let config = EngineConfig { threads, ..EngineConfig::default() };
    (Engine::with_config(plan, &reg, config).unwrap(), wires)
}

/// Per-source wire traffic, reduced to the exactly-comparable counters:
/// `(requests, fills, batched_holes, bytes_received)` per source name.
type TrafficKey = Vec<(String, Option<(u64, u64, u64, u64)>)>;

fn traffic_key(engine: &Engine) -> TrafficKey {
    engine
        .traffic()
        .into_iter()
        .map(|(n, s)| {
            (n, s.map(|s| (s.requests, s.fills, s.batched_holes, s.bytes_received)))
        })
        .collect()
}

fn wire_counts(wires: &[Arc<AtomicU64>]) -> Vec<u64> {
    wires.iter().map(|w| w.load(Ordering::Relaxed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn parallel_warm_up_is_invisible_on_full_walks(
        s0 in 0u64..4_000,
        s1 in 0u64..4_000,
        s2 in 0u64..4_000,
        n in 1usize..14,
        qidx in 0usize..2,
    ) {
        let trees =
            [random_tree(s0, n, LABELS), random_tree(s1, n, LABELS), random_tree(s2, n, LABELS)];
        let query = total_queries()[qidx];

        let (mut seq, seq_wires) = build(&trees, query, 1);
        let seq_answer = materialize(&mut seq);

        let (mut par, par_wires) = build(&trees, query, 4);
        let par_answer = materialize(&mut par);
        prop_assert!(par.overlap().entered() > 0, "warm-up ran");

        prop_assert_eq!(par_answer.to_string(), seq_answer.to_string());
        // The engine's per-source command counts, the buffers' traffic
        // counters, and the wrappers' wire exchange counts must all be
        // identical: the warm-up only *re-schedules* work.
        prop_assert_eq!(par.stats().per_source, seq.stats().per_source);
        prop_assert_eq!(traffic_key(&par), traffic_key(&seq));
        prop_assert_eq!(wire_counts(&par_wires), wire_counts(&seq_wires));
    }

    #[test]
    fn parallel_answers_match_sequential_on_selective_queries(
        s0 in 0u64..4_000,
        s1 in 0u64..4_000,
        s2 in 0u64..4_000,
        n in 1usize..14,
        qidx in 0usize..3,
    ) {
        let trees =
            [random_tree(s0, n, LABELS), random_tree(s1, n, LABELS), random_tree(s2, n, LABELS)];
        let query = partial_queries()[qidx];
        let (mut seq, _) = build(&trees, query, 1);
        let (mut par, _) = build(&trees, query, 4);
        prop_assert_eq!(
            materialize(&mut par).to_string(),
            materialize(&mut seq).to_string()
        );
    }

    #[test]
    fn prefetch_workers_are_transparent_and_account_every_fill(
        seed in 0u64..10_000,
        nodes in 1usize..40,
        workers in 1usize..5,
        chunk in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let policy = FillPolicy::Chunked { n: chunk };

        let mut seq_nav = BufferNavigator::new(TreeWrapper::single(&tree, policy), "doc");
        let seq_answer = materialize(&mut seq_nav);
        let seq_fills = seq_nav.stats().snapshot().fills;

        let prefetcher = ConcurrentPrefetcher::new(TreeWrapper::single(&tree, policy), workers);
        let mut nav = BufferNavigator::new(prefetcher, "doc");
        let answer = materialize(&mut nav);

        prop_assert_eq!(answer.to_string(), seq_answer.to_string());
        prop_assert_eq!(nav.stats().snapshot().fills, seq_fills,
            "the buffer above the prefetcher issues the same fills");

        // After quiescing the workers, the prefetcher's own accounting
        // must cover exactly the sequential fill set: every client fill
        // was either a cache hit or a miss, each hole exactly once.
        let prefetcher = nav.into_wrapper();
        prefetcher.quiesce();
        prop_assert_eq!(prefetcher.hits() + prefetcher.misses(), seq_fills);
    }

    #[test]
    fn prefetch_workers_are_transparent_under_injected_faults(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        fault_seed in 0u64..1_000,
        workers in 1usize..5,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        // Generous retry budget, breaker disabled: with a 10% fault rate
        // and 10 attempts, degradation is practically impossible, so both
        // runs must converge to the same bytes even though their retry
        // schedules differ.
        let policy = RetryPolicy { max_attempts: 10, breaker_threshold: 0, ..RetryPolicy::default() };
        let faulty = || {
            FaultyWrapper::new(
                TreeWrapper::single(&tree, FillPolicy::NodeAtATime),
                FaultConfig::transient(fault_seed, 0.1),
            )
        };

        let mut seq_nav = BufferNavigator::with_retry(faulty(), "doc", policy);
        let seq_answer = materialize(&mut seq_nav);

        let prefetcher = ConcurrentPrefetcher::new(faulty(), workers);
        let mut nav = BufferNavigator::with_retry(prefetcher, "doc", policy);
        let answer = materialize(&mut nav);
        prop_assert_eq!(answer.to_string(), seq_answer.to_string());
    }

    #[test]
    fn trace_rollup_reconciles_exactly_under_concurrency(
        s0 in 0u64..4_000,
        s1 in 0u64..4_000,
        s2 in 0u64..4_000,
        n in 1usize..14,
        qidx in 0usize..2,
    ) {
        let trees =
            [random_tree(s0, n, LABELS), random_tree(s1, n, LABELS), random_tree(s2, n, LABELS)];
        let plan = translate(&parse_query(total_queries()[qidx]).unwrap()).unwrap();

        // Three traced, buffered sources sharing one recorder ring.
        let sink = TraceSink::enabled(1 << 18);
        let mut reg = SourceRegistry::new();
        for (i, tree) in trees.iter().enumerate() {
            let nav = BufferNavigator::new(
                TreeWrapper::single(tree, FillPolicy::NodeAtATime),
                "doc",
            )
            .with_trace(sink.clone());
            let (health, stats) = (nav.health(), nav.stats());
            reg.add_navigator_traced(format!("s{i}"), nav, health, stats, sink.clone());
        }
        let config = EngineConfig { threads: 4, ..EngineConfig::default() };
        let doc = VirtualDocument::new(Engine::with_config(plan, &reg, config).unwrap());
        let _ = materialize(&mut *doc.engine().lock().unwrap());

        let mut traffic = (0, 0, 0);
        for (_, snap) in doc.engine().lock().unwrap().traffic() {
            if let Some(s) = snap {
                traffic.0 += s.requests;
                traffic.1 += s.batched_holes;
                traffic.2 += s.wasted_bytes;
            }
        }
        let log = doc.trace();
        prop_assert_eq!(log.dropped(), 0);
        prop_assert!(log.rollup().matches_traffic(traffic),
            "concurrently emitted fill events must still account for the traffic exactly");
    }
}
