//! Property-based differential testing: on randomly generated documents
//! and a family of generated queries, fully navigating the lazy engine
//! must equal the eager evaluator's answer — and must be insensitive to
//! cache configuration and buffer fill policy.

use mix::algebra::rewrite::insert_eager_steps;
use mix::prelude::*;
use mix::wrappers::gen::random_tree;
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "x"];

/// A pool of structurally diverse query templates over one source `src`.
fn query_pool() -> Vec<&'static str> {
    vec![
        // Plain collection at various depths.
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src a $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src (a|b)._ $V",
        // Recursive paths.
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _.a*.b $V",
        "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._*.c $V",
        // Chained variable paths.
        "CONSTRUCT <out> $W {$W} </out> {} WHERE src _._ $V AND $V a $W",
        "CONSTRUCT <out> $W {$W} </out> {} WHERE src _ $V AND $V b*._ $W",
        // Selection.
        r#"CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V AND $V _ $W AND $W = "a""#,
        // Grouping by a value.
        "CONSTRUCT <out> <g> $W $V {$V} </g> {$W} </out> {} \
         WHERE src _._ $V AND $V _ $W",
        // Self-join on labels.
        "CONSTRUCT <out> <p> $V $W {$W} </p> {$V} </out> {} \
         WHERE src _._ $V AND src _._ $W AND $V = $W",
        // Tree-pattern form (footnote 6) of a chained path.
        "CONSTRUCT <out> $W {$W} </out> {} WHERE <a> $V: <b> $W </b> </a> IN src",
        // Nested grouping with a literal.
        r#"CONSTRUCT <out> <g> "k:" $W $V {$V} </g> {$W} </out> {}
           WHERE src _._ $V AND $V _ $W"#,
        // Inequality selection.
        r#"CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V AND $V _ $W AND $W != "a""#,
        // Variable-labeled construction.
        "CONSTRUCT <out> <$W> $V {$V} </$W> {$W} </out> {} \
         WHERE src _._ $V AND $V _ $W",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lazy_matches_eager_on_random_documents(
        seed in 0u64..10_000,
        nodes in 1usize..40,
        qidx in 0usize..16,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let plan = translate(&parse_query(query).unwrap()).unwrap();

        let mut reg = SourceRegistry::new();
        reg.add_tree("src", &tree);
        let expected = eager::eval(&plan, &reg);

        let mut reg2 = SourceRegistry::new();
        reg2.add_tree("src", &tree);
        let mut engine = Engine::new(plan, &reg2).unwrap();
        let got = materialize(&mut engine);
        prop_assert_eq!(Ok(got), expected.map_err(|e| e.message));
    }

    #[test]
    fn cache_configuration_is_observationally_equivalent(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..16,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let plan = translate(&parse_query(query).unwrap()).unwrap();

        let mut results = Vec::new();
        for config in [
            EngineConfig::default(),
            EngineConfig { join_cache: false, group_cache: false, ..EngineConfig::default() },
            EngineConfig::with_select(),
            EngineConfig { hash_join: true, ..EngineConfig::default() },
        ] {
            let mut reg = SourceRegistry::new();
            reg.add_tree("src", &tree);
            let mut engine = Engine::with_config(plan.clone(), &reg, config).unwrap();
            results.push(materialize(&mut engine));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
        prop_assert_eq!(&results[0], &results[3]);
    }

    #[test]
    fn rewriting_preserves_results(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..16,
    ) {
        // Rewritten plans must produce the same answer. The only rule
        // that can permute binding order on these queries is the join
        // swap; compare answers with order-insensitive children when a
        // swap occurred, exactly otherwise.
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let initial = translate(&parse_query(query).unwrap()).unwrap();
        let mut rewritten = initial.clone();
        let stats = rewrite(&mut rewritten, NcCapabilities::minimal());

        let mut reg = SourceRegistry::new();
        reg.add_tree("src", &tree);
        let a = eager::eval(&initial, &reg).unwrap();
        let mut reg2 = SourceRegistry::new();
        reg2.add_tree("src", &tree);
        let mut engine = Engine::new(rewritten, &reg2).unwrap();
        let b = materialize(&mut engine);
        if stats.join_swaps == 0 && stats.gd_pushdowns == 0 {
            prop_assert_eq!(a, b);
        } else {
            let mut ca: Vec<String> = a.children().iter().map(|c| c.canonical()).collect();
            let mut cb: Vec<String> = b.children().iter().map(|c| c.canonical()).collect();
            ca.sort();
            cb.sort();
            prop_assert_eq!(a.label(), b.label());
            prop_assert_eq!(ca, cb);
        }
    }

    #[test]
    fn eager_steps_preserve_results(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        qidx in 0usize..16,
    ) {
        let tree = random_tree(seed, nodes, LABELS);
        let query = query_pool()[qidx];
        let mut plan = translate(&parse_query(query).unwrap()).unwrap();
        let mut reg = SourceRegistry::new();
        reg.add_tree("src", &tree);
        let expected = eager::eval(&plan, &reg).unwrap();

        let _ = insert_eager_steps(&mut plan);
        let mut reg2 = SourceRegistry::new();
        reg2.add_tree("src", &tree);
        let mut engine = Engine::new(plan, &reg2).unwrap();
        prop_assert_eq!(materialize(&mut engine), expected);
    }

    #[test]
    fn buffered_sources_are_transparent(
        seed in 0u64..5_000,
        nodes in 1usize..30,
        chunk in 1usize..7,
    ) {
        // The same query over (a) a plain document, (b) the document
        // behind a buffer + chunked wrapper must agree: the buffer layer
        // is invisible to the mediator.
        let tree = random_tree(seed, nodes, LABELS);
        let query = "CONSTRUCT <out> $V {$V} </out> {} WHERE src _._ $V";
        let plan = translate(&parse_query(query).unwrap()).unwrap();

        let mut plain = SourceRegistry::new();
        plain.add_tree("src", &tree);
        let mut e1 = Engine::new(plan.clone(), &plain).unwrap();
        let direct = materialize(&mut e1);

        let mut buffered = SourceRegistry::new();
        buffered.add_navigator(
            "src",
            BufferNavigator::new(
                TreeWrapper::single(&tree, FillPolicy::Chunked { n: chunk }),
                "doc",
            ),
        );
        let mut e2 = Engine::new(plan, &buffered).unwrap();
        let via_buffer = materialize(&mut e2);
        prop_assert_eq!(direct, via_buffer);
    }
}
