//! Offline stand-in for `parking_lot` (see the `rand` shim for why).
//!
//! Only the `Mutex` API the workspace uses: `Mutex::new` and the
//! non-poisoning `lock()` returning a guard.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutex with `parking_lot`'s non-poisoning `lock()` signature, backed
/// by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock. Unlike `std`, never returns a poison error: a
    /// panic while holding the lock propagates the inner state as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}
