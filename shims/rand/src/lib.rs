//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so external crates cannot be resolved. This shim
//! implements exactly the subset of the `rand 0.8` API the workspace uses
//! — `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}` — on top of a SplitMix64 generator. Everything is
//! deterministic per seed, which is what the workload generators want
//! anyway (`gen::homes_doc(seed, ..)` must be reproducible across runs).

/// A seedable random number generator (the `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` argument: a half-open or inclusive range
/// over a primitive integer type.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample from the range using `next` as entropy.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The `rand::Rng` subset used by the workspace.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
