//! Offline stand-in for the `criterion` crate (see the `rand` shim for
//! why external crates cannot be resolved here).
//!
//! Implements the subset the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BatchSize::SmallInput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple mean over
//! `sample_size` wall-clock samples — no statistics, outlier analysis, or
//! HTML reports. `--test` on the command line (as run by CI's
//! `cargo bench -- --test`) switches to a single smoke-test iteration
//! per benchmark.

use std::time::{Duration, Instant};

/// How per-iteration setup cost is amortised. The shim times setup and
/// routine together but runs setup outside the recorded window, so the
/// variants are equivalent here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batch many iterations per setup.
    SmallInput,
    /// Setup output is large; one iteration per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measure a routine with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(out);
        }
    }

    /// Measure a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(out);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    fn run(&self, id: String, f: impl FnOnce(&mut Bencher)) {
        let samples = if self.criterion.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher { samples, elapsed: Duration::ZERO, iterations: 0 };
        f(&mut b);
        let mean = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX)
        };
        println!("{}/{}: {:>12.3?} mean over {} iters", self.name, id, mean, b.iterations);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// End the group (a report boundary in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for one-iteration smoke runs.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// Prevent the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundle benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { test_mode: true };
        smoke(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
