//! A counting [`GlobalAlloc`]: forwards to the system allocator and keeps
//! process-wide tallies of allocation calls and bytes requested.
//!
//! Benches and tests install it once —
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: countalloc::CountingAlloc = countalloc::CountingAlloc::new();
//! ```
//!
//! — then bracket the region of interest with [`CountingAlloc::snapshot`]
//! and subtract, or use [`count_allocations`] for the common closure form.
//! Counters are relaxed atomics: cheap enough to leave on, precise enough
//! for "O(rows), not O(rows²)" assertions. `realloc` counts as one
//! allocation event (the growth path we care about) and only the *new*
//! size is added to the byte tally; `dealloc` is tracked separately so
//! steady-state leaks show up as `allocs - deallocs` drift.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Zero-sized; all state is in statics so the
/// counters are readable without a handle to the installed instance.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new instance (they all share the same counters).
    pub const fn new() -> Self {
        CountingAlloc
    }

    /// Current counter values `(allocations, deallocations, bytes)`.
    pub fn snapshot() -> Counts {
        Counts {
            allocations: ALLOCS.load(Relaxed),
            deallocations: DEALLOCS.load(Relaxed),
            bytes: BYTES.load(Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

/// A point-in-time reading of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// `alloc` + `realloc` calls.
    pub allocations: u64,
    /// `dealloc` calls.
    pub deallocations: u64,
    /// Total bytes requested by `alloc` and `realloc`.
    pub bytes: u64,
}

impl Counts {
    /// Counter deltas since `earlier` (saturating, in case the closure
    /// under measurement raced another thread's frees).
    pub fn since(&self, earlier: &Counts) -> Counts {
        Counts {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Run `f` and return `(result, deltas)` — the allocation activity while
/// it ran. Process-global: concurrent threads' allocations are included,
/// so keep measured regions single-threaded for exact counts.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, Counts) {
    let before = CountingAlloc::snapshot();
    let out = f();
    let after = CountingAlloc::snapshot();
    (out, after.since(&before))
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] here — unit tests only check
    // the counter arithmetic; integration tests in consumers install it.

    #[test]
    fn since_subtracts_fieldwise_and_saturates() {
        let a = Counts { allocations: 10, deallocations: 4, bytes: 100 };
        let b = Counts { allocations: 13, deallocations: 9, bytes: 150 };
        assert_eq!(
            b.since(&a),
            Counts { allocations: 3, deallocations: 5, bytes: 50 }
        );
        assert_eq!(
            a.since(&b),
            Counts { allocations: 0, deallocations: 0, bytes: 0 }
        );
    }

    #[test]
    fn snapshot_is_monotonic() {
        let a = CountingAlloc::snapshot();
        let b = CountingAlloc::snapshot();
        assert!(b.allocations >= a.allocations);
        assert!(b.bytes >= a.bytes);
    }
}
