//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `proptest` cannot be resolved. This shim implements the
//! subset of its API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: [`Just`], integer ranges, string literals as
//!   character-class regexes, tuples, [`collection::vec`],
//!   [`string::string_regex`], `prop_oneof!`, `.prop_map`,
//!   `.prop_recursive`, `.boxed()`.
//!
//! Cases are generated from a deterministic per-test seed (test name hash
//! × case index), so failures are reproducible without regression files.
//! There is **no shrinking**: a failing case reports its inputs via the
//! assertion message and the case seed.

use std::rc::Rc;

pub mod test_runner {
    /// Deterministic entropy source for one test case (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given case seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n` (`n` > 0).
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable description of the failure.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    /// Per-test configuration (the `ProptestConfig` subset used).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// FNV-1a hash of the test path — the per-test base seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

use test_runner::TestRng;

/// A value generator. Unlike real proptest there is no intermediate value
/// tree: a strategy samples final values directly (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives a strategy for the
    /// sub-values and builds the composite level. `depth` bounds nesting;
    /// `_desired_size` / `_expected_branch` are accepted for source
    /// compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        // Unroll the recursion `depth` times: level k+1 samples the base
        // 1-in-4 (keeps leaves frequent) and the recursive case otherwise.
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            let b = base.clone();
            level = BoxedStrategy::new(move |rng| {
                if rng.index(4) == 0 {
                    b.sample(rng)
                } else {
                    branch.sample(rng)
                }
            });
        }
        level
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::new(move |rng| inner.sample(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// A string literal is a strategy via the character-class regex subset of
/// [`string::string_regex`].
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex literal `{self}`: {e}"))
            .sample(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod string {
    use super::{Strategy, TestRng};

    /// Error from parsing an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// One `[class]{m,n}` term of a pattern.
    #[derive(Debug, Clone)]
    struct Term {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a (subset) regex: a sequence
    /// of character classes `[..]` or literal characters, each optionally
    /// repeated `{m,n}`. Ranges (`a-z`), `\n`/`\t` escapes and a trailing
    /// literal `-` inside classes are supported — the dialect the
    /// workspace's generators actually use.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy<T> {
        terms: Vec<Term>,
        _marker: core::marker::PhantomData<T>,
    }

    impl Strategy for RegexGeneratorStrategy<String> {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for t in &self.terms {
                let n = t.min + rng.index(t.max - t.min + 1);
                for _ in 0..n {
                    out.push(t.chars[rng.index(t.chars.len())]);
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<Vec<char>, Error> {
        let mut members = Vec::new();
        loop {
            let c = chars.next().ok_or_else(|| Error("unterminated class".into()))?;
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().ok_or_else(|| Error("dangling escape".into()))?;
                    members.push(unescape(e));
                }
                lo => {
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(']') | None => members.push(lo), // literal '-'
                            Some(_) => {
                                chars.next();
                                let hi = chars.next().unwrap();
                                let hi = if hi == '\\' {
                                    unescape(
                                        chars
                                            .next()
                                            .ok_or_else(|| Error("dangling escape".into()))?,
                                    )
                                } else {
                                    hi
                                };
                                if (lo as u32) > (hi as u32) {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                for u in (lo as u32)..=(hi as u32) {
                                    members.push(char::from_u32(u).unwrap());
                                }
                            }
                        }
                    } else {
                        members.push(lo);
                    }
                }
            }
        }
        if members.is_empty() {
            return Err(Error("empty class".into()));
        }
        Ok(members)
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars>,
    ) -> Result<(usize, usize), Error> {
        if chars.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        chars.next();
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (m, n) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse().map_err(|_| Error("bad repeat".into()))?,
                        n.parse().map_err(|_| Error("bad repeat".into()))?,
                    ),
                    None => {
                        let k = body.parse().map_err(|_| Error("bad repeat".into()))?;
                        (k, k)
                    }
                };
                if m > n {
                    return Err(Error("bad repeat bounds".into()));
                }
                return Ok((m, n));
            }
            body.push(c);
        }
        Err(Error("unterminated repeat".into()))
    }

    /// Build a string strategy from the supported regex subset.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy<String>, Error> {
        let mut terms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let members = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => vec![unescape(
                    chars.next().ok_or_else(|| Error("dangling escape".into()))?,
                )],
                lit => vec![lit],
            };
            let (min, max) = parse_repeat(&mut chars)?;
            terms.push(Term { chars: members, min, max });
        }
        Ok(RegexGeneratorStrategy { terms, _marker: core::marker::PhantomData })
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Weighted-free choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::BoxedStrategy::new(move |rng| {
            let i = rng.index(arms.len());
            $crate::Strategy::sample(&arms[i], rng)
        })
    }};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
}

/// The property-test entry macro: each `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let base = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} (seed {seed:#x}) of {} failed: {}",
                        stringify!($name),
                        e.message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        Leaf(String),
        Node(Vec<Toy>),
    }

    fn size(t: &Toy) -> usize {
        match t {
            Toy::Leaf(_) => 1,
            Toy::Node(children) => 1 + children.iter().map(size).sum::<usize>(),
        }
    }

    fn arb_toy() -> impl Strategy<Value = Toy> {
        prop_oneof![Just("x"), Just("y")]
            .prop_map(|s| Toy::Leaf(s.to_string()))
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Toy::Node)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn string_regex_literals_match_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn recursive_strategies_terminate(t in arb_toy()) {
            prop_assert!(size(&t) < 10_000);
        }

        #[test]
        fn tuples_and_vec(pair in (0usize..4, crate::collection::vec(Just(1u8), 1..3))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = "[a-z]{1,8}";
        let mut a = crate::test_runner::TestRng::new(99);
        let mut b = crate::test_runner::TestRng::new(99);
        assert_eq!(Strategy::sample(&strat, &mut a), Strategy::sample(&strat, &mut b));
    }
}
