//! The `allbooks` scenario of `examples/bookstores.rs`, but the stores'
//! network is unreliable: every LXP request can fail transiently, and one
//! store eventually goes down for good.
//!
//! Demonstrates the fault-tolerance layer end to end:
//!
//! * transient faults (25% of all requests) are retried away inside the
//!   buffer — the integrated view is **identical** to the fault-free run;
//! * a permanent outage degrades to a partial answer, and the client reads
//!   which source failed and why from the DOM-side health surface — no
//!   panic anywhere in the path.
//!
//! Run with: `cargo run --example fault_tolerance`

use mix::prelude::*;
use mix::wrappers::gen::bookstore_doc;
use mix::wrappers::{Network, WebWrapper};
use std::sync::Arc;

const QUERY: &str = r#"
CONSTRUCT <allbooks>
            <offer> $T $P {$P} </offer> {$T}
          </allbooks> {}
WHERE amazon books.book $B AND $B title._ $T AND $B price._ $P
"#;

/// The bookstore source, optionally behind a fault injector.
fn build_sources(
    network: &Arc<Network>,
    n_books: usize,
    faults: Option<FaultConfig>,
    policy: RetryPolicy,
) -> SourceRegistry {
    let page_size = FillPolicy::Chunked { n: 20 };
    let mut amazon = WebWrapper::with_policy(network.clone(), page_size);
    amazon.add_page("amazon", &bookstore_doc(1, "amazon", n_books));

    let mut sources = SourceRegistry::new();
    match faults {
        Some(config) => {
            let nav = BufferNavigator::with_retry(
                FaultyWrapper::new(amazon, config),
                "amazon",
                policy,
            );
            let health = nav.health();
            sources.add_navigator_with_health("amazon", nav, health);
        }
        None => {
            sources.add_navigator("amazon", BufferNavigator::new(amazon, "amazon"));
        }
    }
    sources
}

fn answer_of(doc: &VirtualDocument) -> Tree {
    doc.root().to_tree()
}

fn health_report(doc: &VirtualDocument) {
    println!("  overall health: {}", doc.overall_health());
    for (name, snap) in doc.health() {
        match snap {
            Some(s) => println!(
                "  {name}: {} — {} retries, backoff cost {}, {} degraded ops{}",
                s.status,
                s.retries,
                s.backoff_cost,
                s.degraded_ops,
                s.last_error.map(|e| format!("\n    last error: {e}")).unwrap_or_default()
            ),
            None => println!("  {name}: (no health handle)"),
        }
    }
}

fn main() {
    let n_books = 120;
    let plan = translate(&parse_query(QUERY).unwrap()).unwrap();

    // ---- baseline: a healthy network ----------------------------------
    let network = Network::new(250, 1);
    let sources = build_sources(&network, n_books, None, RetryPolicy::default());
    let clean_doc = VirtualDocument::new(Engine::new(plan.clone(), &sources).unwrap());
    let clean = answer_of(&clean_doc);
    println!(
        "fault-free run: {} offers, {} answer nodes",
        clean.children().len(),
        clean.size()
    );

    // ---- 25% of all requests fail transiently -------------------------
    let network = Network::new(250, 1);
    let policy = RetryPolicy { max_attempts: 32, ..RetryPolicy::default() };
    let sources = build_sources(
        &network,
        n_books,
        Some(FaultConfig::transient(0xB00C, 0.25)),
        policy,
    );
    let doc = VirtualDocument::new(Engine::new(plan.clone(), &sources).unwrap());
    let flaky = answer_of(&doc);
    println!("\nflaky network (25% transient faults per request):");
    println!("  identical answer: {}", flaky == clean);
    health_report(&doc);
    assert_eq!(flaky, clean, "retries must absorb transient faults");
    assert_eq!(doc.overall_health(), HealthStatus::Healthy);

    // ---- the store goes down mid-browse -------------------------------
    let network = Network::new(250, 1);
    let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
    let sources = build_sources(
        &network,
        n_books,
        Some(FaultConfig::outage_after(4)),
        policy,
    );
    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());
    let partial = answer_of(&doc);
    println!("\npermanent outage after 4 requests:");
    println!(
        "  partial answer: {} offers, {} of {} answer nodes before the store went dark",
        partial.children().len(),
        partial.size(),
        clean.size()
    );
    health_report(&doc);
    assert!(partial.size() < clean.size(), "the outage must truncate the answer");
    assert_ne!(doc.overall_health(), HealthStatus::Healthy);
}
