//! An interactive DOM-VXD console — the Rust analogue of the paper's §5
//! "interface to a Python interpreter that allows the user to interactively
//! issue Java calls that correspond to the navigation commands".
//!
//! Commands (one per line on stdin):
//!
//! ```text
//! d            down  — first child
//! r            right — next sibling
//! u            up    — back to where you descended from (client-side stack)
//! f            fetch — print the label
//! s <label>    select — next sibling with the given label
//! t            tree  — materialize and print the current subtree
//! g            guide — DTD-style structural summary of the subtree
//! n            navs  — print per-source navigation counters
//! q            quit
//! ```
//!
//! Run interactively: `cargo run --example vxd_console`
//! or scripted:      `echo "f d f d t q" | tr ' ' '\n' | cargo run --example vxd_console`

use mix::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    // The running example's virtual view over generated data.
    let mut sources = SourceRegistry::new();
    sources.add_tree("homesSrc", &mix::wrappers::gen::homes_doc(42, 25, 6));
    sources.add_tree("schoolsSrc", &mix::wrappers::gen::schools_doc(43, 25, 6));
    let plan = translate(
        &parse_query(
            "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
             WHERE homesSrc homes.home $H AND $H zip._ $V1 \
               AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
        )
        .unwrap(),
    )
    .unwrap();
    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());

    println!("DOM-VXD console over the virtual med_home view.");
    println!("commands: d(own) r(ight) u(p) f(etch) s <label> t(ree) g(uide) n(avs) q(uit)");

    let mut cursor = doc.root();
    // The client-side path stack (`u` is not a DOM-VXD command; the thin
    // client remembers where it descended from, like any DOM app would).
    let mut stack: Vec<VirtualElement> = Vec::new();

    let stdin = std::io::stdin();
    print!("> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let mut words = line.split_whitespace();
        match words.next() {
            Some("d") => match cursor.down() {
                Some(c) => {
                    stack.push(cursor.clone());
                    cursor = c;
                    println!("↓ {}", cursor.label());
                }
                None => println!("⊥ (leaf)"),
            },
            Some("r") => match cursor.right() {
                Some(c) => {
                    cursor = c;
                    println!("→ {}", cursor.label());
                }
                None => println!("⊥ (no right sibling)"),
            },
            Some("u") => match stack.pop() {
                Some(p) => {
                    cursor = p;
                    println!("↑ {}", cursor.label());
                }
                None => println!("⊥ (at the root)"),
            },
            Some("f") => println!("label: {}", cursor.label()),
            Some("s") => match words.next() {
                Some(label) => match cursor.select(&LabelPred::equals(label)) {
                    Some(c) => {
                        cursor = c;
                        println!("σ→ {}", cursor.label());
                    }
                    None => println!("⊥ (no matching sibling)"),
                },
                None => println!("usage: s <label>"),
            },
            Some("t") => println!("{}", mix::xml::xmlio::to_xml_pretty(&cursor.to_tree())),
            Some("g") => {
                // BBQ-style guide of the current subtree (materialized),
                // or of the whole virtual view when at the root (computed
                // by lazy navigation: `g` at the root is itself a
                // navigation-driven operation).
                if stack.is_empty() {
                    print!("{}", doc.summary(32));
                } else {
                    let tree = cursor.to_tree();
                    let mut nav = mix::nav::DocNavigator::from_tree(&tree);
                    print!("{}", mix::nav::Summary::infer(&mut nav, 32));
                }
            }
            Some("n") => {
                for (name, stats) in &doc.stats().per_source {
                    println!("  {name}: {stats}");
                }
            }
            Some("q") => break,
            Some(other) => println!("unknown command `{other}`"),
            None => {}
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
    println!("\nfinal source navigation counts:");
    for (name, stats) in &doc.stats().per_source {
        println!("  {name}: {stats}");
    }
}
