//! An interactive DOM-VXD console — the Rust analogue of the paper's §5
//! "interface to a Python interpreter that allows the user to interactively
//! issue Java calls that correspond to the navigation commands".
//!
//! Both sources run behind buffered LXP wrappers that share one flight-
//! recorder sink with the engine, so every console command can be replayed
//! from the trace: which operators it woke, which source navigations and
//! wire exchanges it caused, and whether anything degraded along the way.
//!
//! Commands (one per line on stdin):
//!
//! ```text
//! d            down  — first child
//! r            right — next sibling
//! u            up    — back to where you descended from (client-side stack)
//! f            fetch — print the label (checked: flags degraded answers)
//! s <label>    select — next sibling with the given label
//! t            tree  — materialize and print the current subtree
//! g            guide — DTD-style structural summary of the subtree
//! n            navs  — print per-source navigation counters
//! trace [k]    flight recorder — print the last k events (default 20)
//! why          explain the current degradation state, span by span
//! explain      EXPLAIN ANALYZE — plan tree with live per-operator metrics
//! metrics      Prometheus scrape of every live metric series
//! cache        shared fragment-cache stats (`cache inv <src>` invalidates,
//!              `cache clear` drops everything)
//! threads [N]  show or set the engine worker-pool width; with N > 1 the
//!              engine primes independent sources in parallel (the
//!              watermark shown is the peak number of exchanges that
//!              were genuinely in flight at once)
//! q            quit
//! ```
//!
//! Run interactively: `cargo run --example vxd_console`
//! with faults:       `cargo run --example vxd_console -- --faulty`
//! or scripted:      `echo "f d f trace why q" | tr ' ' '\n' | cargo run --example vxd_console`

use mix::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    let faulty = std::env::args().any(|a| a == "--faulty");

    // The running example's virtual view over generated data — both
    // sources behind buffers that log into one shared recorder ring and
    // record into one shared metrics registry, so `trace`/`why` and
    // `metrics`/`explain` each see the whole stack at once.
    let sink = TraceSink::enabled(1 << 16);
    let registry = MetricsRegistry::enabled();
    // One shared cross-query fragment cache serves both buffers; the same
    // handle goes to the registry so `explain` can show per-source hits.
    let cache = FragmentCache::new();
    let homes = mix::wrappers::gen::homes_doc(42, 25, 6);
    let schools = mix::wrappers::gen::schools_doc(43, 25, 6);

    let mut sources = SourceRegistry::new();
    {
        // The homes side optionally runs over an unreliable wire, so
        // `trace` and `why` have something to point at.
        // Buffer uris match the registered source names, so the buffers'
        // per-source series line up with the engine's in `explain`.
        let mut inner = TreeWrapper::new(FillPolicy::Chunked { n: 4 });
        inner.add("homesSrc", std::sync::Arc::new(mix::xml::Document::from_tree(&homes)));
        let cfg = if faulty {
            FaultConfig::transient(0xC0FFEE, 0.35)
        } else {
            FaultConfig::transient(0, 0.0)
        };
        let policy =
            if faulty { RetryPolicy { max_attempts: 2, ..RetryPolicy::default() } } else { RetryPolicy::none() };
        let nav = BufferNavigator::with_retry(FaultyWrapper::new(inner, cfg), "homesSrc", policy)
            .with_trace(sink.clone())
            .with_metrics(registry.clone())
            .with_fragment_cache(cache.clone());
        let (health, stats) = (nav.health(), nav.stats());
        sources.add_navigator_observed("homesSrc", nav, health, stats, sink.clone(), registry.clone());
        sources.set_source_cache("homesSrc", cache.clone());
    }
    {
        let mut inner = TreeWrapper::new(FillPolicy::Chunked { n: 4 });
        inner.add("schoolsSrc", std::sync::Arc::new(mix::xml::Document::from_tree(&schools)));
        let nav = BufferNavigator::new(inner, "schoolsSrc")
            .with_trace(sink.clone())
            .with_metrics(registry.clone())
            .with_fragment_cache(cache.clone());
        let (health, stats) = (nav.health(), nav.stats());
        sources.add_navigator_observed("schoolsSrc", nav, health, stats, sink.clone(), registry.clone());
        sources.set_source_cache("schoolsSrc", cache.clone());
    }

    let plan = translate(
        &parse_query(
            "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
             WHERE homesSrc homes.home $H AND $H zip._ $V1 \
               AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
        )
        .unwrap(),
    )
    .unwrap();
    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());

    println!("DOM-VXD console over the virtual med_home view{}.",
        if faulty { " (homes wire is faulty)" } else { "" });
    println!(
        "commands: d(own) r(ight) u(p) f(etch) s <label> t(ree) g(uide) n(avs) \
         trace [k] why explain metrics cache threads [N] q(uit)"
    );
    println!(
        "observability: `trace [k]` replays the flight recorder, `why` blames \
         degradations on commands, `explain` prints EXPLAIN ANALYZE, `metrics` \
         dumps a Prometheus scrape"
    );

    let mut cursor = doc.root();
    // The client-side path stack (`u` is not a DOM-VXD command; the thin
    // client remembers where it descended from, like any DOM app would).
    let mut stack: Vec<VirtualElement> = Vec::new();

    let stdin = std::io::stdin();
    print!("> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let mut words = line.split_whitespace();
        match words.next() {
            Some("d") => match cursor.down() {
                Some(c) => {
                    stack.push(cursor.clone());
                    cursor = c;
                    println!("↓ {}", cursor.label());
                }
                None => println!("⊥ (leaf)"),
            },
            Some("r") => match cursor.right() {
                Some(c) => {
                    cursor = c;
                    println!("→ {}", cursor.label());
                }
                None => println!("⊥ (no right sibling)"),
            },
            Some("u") => match stack.pop() {
                Some(p) => {
                    cursor = p;
                    println!("↑ {}", cursor.label());
                }
                None => println!("⊥ (at the root)"),
            },
            Some("f") => match cursor.label_checked() {
                Ok(label) => println!("label: {label}"),
                Err(d) => println!(
                    "label: {} ⚠ DEGRADED — {} faltered; `why` explains",
                    d.label,
                    d.sources.join(", ")
                ),
            },
            Some("s") => match words.next() {
                Some(label) => match cursor.select(&LabelPred::equals(label)) {
                    Some(c) => {
                        cursor = c;
                        println!("σ→ {}", cursor.label());
                    }
                    None => println!("⊥ (no matching sibling)"),
                },
                None => println!("usage: s <label>"),
            },
            Some("t") => println!("{}", mix::xml::xmlio::to_xml_pretty(&cursor.to_tree())),
            Some("g") => {
                // BBQ-style guide of the current subtree (materialized),
                // or of the whole virtual view when at the root (computed
                // by lazy navigation: `g` at the root is itself a
                // navigation-driven operation).
                if stack.is_empty() {
                    print!("{}", doc.summary(32));
                } else {
                    let tree = cursor.to_tree();
                    let mut nav = mix::nav::DocNavigator::from_tree(&tree);
                    print!("{}", mix::nav::Summary::infer(&mut nav, 32));
                }
            }
            Some("n") => {
                for (name, stats) in &doc.stats().per_source {
                    println!("  {name}: {stats}");
                }
            }
            Some("trace") => {
                let k = words.next().and_then(|w| w.parse().ok()).unwrap_or(20usize);
                let log = doc.trace();
                let events = log.events();
                let skip = events.len().saturating_sub(k);
                if skip > 0 {
                    println!("  … {skip} earlier events ({} dropped from the ring)", log.dropped());
                }
                for e in &events[skip..] {
                    println!("  {e}");
                }
                let rollup = log.rollup();
                println!(
                    "  — {} events, {} spans | wire: {} requests, {} batched holes, {} wasted bytes, {} retries, {} degradations",
                    log.len(),
                    log.spans().len(),
                    rollup.requests,
                    rollup.batched_holes,
                    rollup.wasted_bytes,
                    rollup.retries,
                    rollup.degradations,
                );
            }
            Some("why") => {
                let status = doc.overall_health();
                println!("  overall: {status:?}");
                for (name, snap) in doc.health() {
                    if let Some(s) = snap {
                        println!(
                            "  {name}: {} retries, {} degraded ops, {} prefetch failures",
                            s.retries, s.degraded_ops, s.prefetch_failures
                        );
                    }
                }
                let log = doc.trace();
                let degs = log.degradations();
                if degs.is_empty() {
                    println!("  no degradations recorded — every answer seen so far is genuine");
                } else {
                    println!("  {} degradation(s); most recent, with the command to blame:", degs.len());
                    for e in degs.iter().rev().take(5) {
                        let span = log.by_span(e.span);
                        let blame = span
                            .first()
                            .map(|s| s.to_string())
                            .unwrap_or_else(|| "<span fell off the ring>".into());
                        println!("    {e}");
                        println!("      ↳ caused by {blame}");
                    }
                }
            }
            Some("explain") => print!("{}", doc.explain_analyze()),
            Some("metrics") => {
                let snap = doc.metrics_snapshot();
                print!("{}", snap.render_prometheus());
                // A quantile digest on top of the raw scrape: merge the
                // samples of each histogram family (verb-labelled series
                // fold into one) and answer p50/p90/p99 from the buckets
                // — the same helpers EXPLAIN ANALYZE uses per operator.
                let mut digests: Vec<(String, mix::buffer::HistogramSnapshot)> = Vec::new();
                for s in &snap.samples {
                    if let mix::buffer::SampleValue::Histogram(h) = &s.value {
                        if h.count == 0 {
                            continue;
                        }
                        match digests.iter_mut().find(|(n, _)| *n == s.name) {
                            Some((_, agg)) => agg.merge(h),
                            None => digests.push((s.name.clone(), h.clone())),
                        }
                    }
                }
                if !digests.is_empty() {
                    println!("# quantiles (p50/p90/p99/max)");
                    for (name, h) in &digests {
                        println!(
                            "#   {name}: {}/{}/{}/{} over {} observations",
                            h.p50(),
                            h.p90(),
                            h.p99(),
                            h.max,
                            h.count
                        );
                    }
                }
            }
            Some("cache") => match (words.next(), words.next()) {
                (Some("inv"), Some(src)) => {
                    let (entries, bytes) = cache.invalidate(src);
                    println!("  invalidated `{src}`: {entries} entries, {bytes} bytes dropped");
                }
                (Some("clear"), _) => {
                    cache.clear();
                    println!("  cache cleared (all source epochs bumped)");
                }
                _ => {
                    let s = cache.stats();
                    println!(
                        "  shared fragment cache: {} entries / {} B (budget {} B)",
                        s.entries, s.bytes, s.budget
                    );
                    println!(
                        "  {} hits, {} misses, {} insertions, {} evictions, {} invalidations",
                        s.hits, s.misses, s.insertions, s.evictions, s.invalidations
                    );
                    for name in ["homesSrc", "schoolsSrc"] {
                        let per = cache.source_stats(name);
                        println!(
                            "    {name}: {} hits, {} misses, {} invalidations",
                            per.hits, per.misses, per.invalidations
                        );
                    }
                    println!("  (`cache inv <src>` invalidates one source, `cache clear` everything)");
                }
            },
            Some("threads") => {
                let engine = doc.engine();
                let mut engine = engine.lock().unwrap();
                if let Some(n) = words.next().and_then(|w| w.parse::<usize>().ok()) {
                    engine.set_threads(n);
                    println!("  worker pool set to {} thread(s)", engine.threads());
                } else {
                    let gauge = engine.overlap();
                    println!(
                        "  worker pool: {} thread(s); {} parallel source primings so far, \
                         peak {} exchange(s) in flight at once",
                        engine.threads(),
                        gauge.entered(),
                        gauge.max_overlap()
                    );
                    println!("  (`threads <n>` resizes; MIX_THREADS seeds concurrent setups)");
                }
            }
            Some("q") => break,
            Some(other) => println!("unknown command `{other}`"),
            None => {}
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
    println!("\nfinal source navigation counts:");
    for (name, stats) in &doc.stats().per_source {
        println!("  {name}: {stats}");
    }
}
