//! Browsability in practice — the three views of the paper's Example 1.
//!
//! * `q_conc` (bounded browsable): source navigations mirror client
//!   navigations;
//! * the filter view (browsable): the cost of the *same* client navigation
//!   depends on where the first matching element sits in the data — and
//!   becomes bounded once `NC` includes `select_φ`;
//! * the orderBy view (unbrowsable): the first answer already requires the
//!   complete list.
//!
//! The static classifier's verdicts (Def. 2) are printed next to measured
//! source-navigation counts.
//!
//! Run with: `cargo run --example browsability`

use mix::algebra::{GroupItem, PlanNode};
use mix::prelude::*;
use mix::wrappers::gen::filter_doc;
use mix::xmas::Var;

/// Source navigations for (a) reaching the first answer child, (b) the
/// full answer.
fn measure(plan: &Plan, registry: impl Fn() -> SourceRegistry, config: EngineConfig) -> (u64, u64) {
    let mut engine = Engine::with_config(plan.clone(), &registry(), config).unwrap();
    let _first = mix::nav::explore::first_k_children(&mut engine, 1);
    let first_cost = engine.stats().total().total();

    let mut engine_all = Engine::with_config(plan.clone(), &registry(), config).unwrap();
    materialize(&mut engine_all);
    let full_cost = engine_all.stats().total().total();
    (first_cost, full_cost)
}

fn row(name: &str, class: Browsability, f: u64, a: u64) {
    println!("{name:<30}  {:<20}  {f:>16}  {a:>9}", class.to_string());
}

/// q_conc, built directly in the algebra (XMAS's CONSTRUCT cannot union
/// two sources in one query): decapitate both roots, union the first-level
/// children, re-wrap under one element.
fn qconc_plan() -> Plan {
    let mut p = Plan::new();
    let v = Var::new;
    let branch = |p: &mut Plan, src: &str| {
        let s = p.add(PlanNode::Source { name: src.into(), out: v("R") });
        let g = p.add(PlanNode::GetDescendants {
            input: s,
            parent: v("R"),
            path: parse_path("_._").unwrap(), // root element, then each child
            out: v("X"),
        });
        p.add(PlanNode::Project { input: g, keep: vec![v("X")] })
    };
    let b1 = branch(&mut p, "src1");
    let b2 = branch(&mut p, "src2");
    let u = p.add(PlanNode::Union { left: b1, right: b2 });
    let gb = p.add(PlanNode::GroupBy {
        input: u,
        group: vec![],
        items: vec![GroupItem { value: v("X"), out: v("LX") }],
    });
    let ce = p.add(PlanNode::CreateElement {
        input: gb,
        label: mix::xmas::LabelSpec::Const("conc".into()),
        ch: v("LX"),
        out: v("C"),
    });
    let td = p.add(PlanNode::TupleDestroy { input: ce, var: v("C") });
    p.set_root(td);
    p.validate().unwrap();
    p
}

fn main() {
    println!(
        "{:<30}  {:<20}  {:>16}  {:>9}",
        "view", "class (Def. 2)", "first-result navs", "full navs"
    );
    println!("{}", "-".repeat(82));

    let minimal = EngineConfig::default();

    // ---- q_conc ---------------------------------------------------------
    let plan = qconc_plan();
    let class = classify(&plan, NcCapabilities::with_select()).overall;
    let reg = || {
        let mut r = SourceRegistry::new();
        r.add_tree("src1", &filter_doc(100, 1));
        r.add_tree("src2", &filter_doc(100, 1));
        r
    };
    let (f, a) = measure(&plan, reg, minimal);
    row("q_conc (Example 1)", class, f, a);

    // ---- the filter view under minimal NC --------------------------------
    let q = "CONSTRUCT <picked> $X {$X} </picked> {} WHERE src items.wanted $X";
    let plan = translate(&parse_query(q).unwrap()).unwrap();
    let class_min = classify(&plan, NcCapabilities::minimal()).overall;
    for match_every in [1usize, 10, 50] {
        let reg = move || {
            let mut r = SourceRegistry::new();
            r.add_tree("src", &filter_doc(100, match_every));
            r
        };
        let (f, a) = measure(&plan, reg, minimal);
        row(&format!("filter, match gap {match_every}"), class_min, f, a);
    }

    // ---- the same view with select_φ in NC --------------------------------
    let class_sel = classify(&plan, NcCapabilities::with_select()).overall;
    for match_every in [1usize, 10, 50] {
        let reg = move || {
            let mut r = SourceRegistry::new();
            r.add_tree("src", &filter_doc(100, match_every));
            r
        };
        let (f, a) = measure(&plan, reg, EngineConfig::with_select());
        row(&format!("filter + select, gap {match_every}"), class_sel, f, a);
    }

    // ---- the orderBy view -------------------------------------------------
    let q = "CONSTRUCT <sorted> $X {$X} </sorted> {} WHERE src items._ $X";
    let mut plan = translate(&parse_query(q).unwrap()).unwrap();
    splice_order_by(&mut plan);
    let class = classify(&plan, NcCapabilities::with_select()).overall;
    let reg = || {
        let mut r = SourceRegistry::new();
        r.add_tree("src", &filter_doc(100, 1));
        r
    };
    let (f, a) = measure(&plan, reg, minimal);
    row("orderBy view", class, f, a);

    println!(
        "\nThe bounded view's first answer costs a handful of navigations; the \
         filter view's cost scales with the match gap under minimal NC but \
         flattens once select_φ is available; the orderBy view pays almost the \
         full cost before its first answer."
    );
}

/// Insert `orderBy $X` between the body and the head of a translated plan.
fn splice_order_by(plan: &mut Plan) {
    let target = plan
        .reachable()
        .into_iter()
        .find(|&id| matches!(plan.node(id), PlanNode::GroupBy { .. }))
        .expect("translated plans group the head");
    let PlanNode::GroupBy { input, group, items } = plan.node(target).clone() else {
        unreachable!()
    };
    let ob = plan.add(PlanNode::OrderBy { input, keys: vec![Var::new("X")] });
    *plan.node_mut(target) = PlanNode::GroupBy { input: ob, group, items };
    plan.validate().expect("orderBy splice keeps the plan valid");
}
