//! The `allbooks` scenario of the paper's introduction: an integrated view
//! over two booksellers where "a warehousing approach is not viable".
//!
//! Both stores are simulated Web sources behind LXP wrappers on a shared
//! network with per-request latency; the mediator integrates them into one
//! virtual `allbooks` view. The demo contrasts the §1 interaction pattern
//! — "issue a broad query, navigate the first few results and stop" —
//! under lazy evaluation against full materialization, in simulated
//! network cost.
//!
//! Run with: `cargo run --example bookstores`

use mix::prelude::*;
use mix::wrappers::gen::bookstore_doc;
use mix::wrappers::{Network, WebWrapper};
use std::sync::Arc;

const QUERY: &str = r#"
CONSTRUCT <allbooks>
            <offer> $T $P {$P} </offer> {$T}
          </allbooks> {}
WHERE amazon books.book $B AND $B title._ $T AND $B price._ $P
"#;

fn build_sources(network: &Arc<Network>, n_books: usize) -> SourceRegistry {
    // Catalogs arrive paginated: 20 complete book entries per request,
    // like a search-result page (the bulk transfer of §4).
    let page_size = FillPolicy::Chunked { n: 20 };
    let mut amazon = WebWrapper::with_policy(network.clone(), page_size);
    amazon.add_page("amazon", &bookstore_doc(1, "amazon", n_books));
    // barnesandnoble: same machinery; integrated by stacking below.
    let mut bn = WebWrapper::with_policy(network.clone(), page_size);
    bn.add_page("bn", &bookstore_doc(2, "bn", n_books));

    let mut sources = SourceRegistry::new();
    sources.add_navigator("amazon", BufferNavigator::new(amazon, "amazon"));
    sources.add_navigator("bn", BufferNavigator::new(bn, "bn"));
    sources
}

fn main() {
    let n_books = 400;

    // ---- lazy: look at the first three offers, then stop --------------
    let network = Network::new(250, 1); // 250 cost units latency per request
    let sources = build_sources(&network, n_books);
    let plan = translate(&parse_query(QUERY).unwrap()).unwrap();
    let doc = VirtualDocument::new(Engine::new(plan.clone(), &sources).unwrap());

    let root = doc.root();
    println!("browsing the virtual allbooks view:");
    let mut offer = root.down();
    let mut shown = 0;
    while let Some(o) = offer {
        if shown == 3 {
            break;
        }
        let title = o.down().map(|t| t.to_tree().text()).unwrap_or_default();
        println!("  offer: {title}");
        shown += 1;
        offer = o.right();
    }
    let lazy_cost = network.stats();
    println!(
        "after 3 offers: {} requests, {} bytes, simulated cost {}",
        lazy_cost.requests, lazy_cost.bytes, lazy_cost.simulated_cost
    );

    // ---- eager baseline: materialize the full answer ------------------
    let network_eager = Network::new(250, 1);
    let sources_eager = build_sources(&network_eager, n_books);
    let full = eager::eval(&plan, &sources_eager).unwrap();
    let eager_cost = network_eager.stats();
    println!(
        "\neager full answer: {} offers; {} requests, {} bytes, simulated cost {}",
        full.children().len(),
        eager_cost.requests,
        eager_cost.bytes,
        eager_cost.simulated_cost
    );

    let speedup = eager_cost.simulated_cost as f64 / lazy_cost.simulated_cost.max(1) as f64;
    println!("\nlazy first-results cost advantage: {speedup:.1}x less simulated network time");

    // ---- cross-store integration: union via two queries ----------------
    // (One mediator view per store, composed by a higher-level mediator —
    //  the Figure 1 stacking.)
    let network2 = Network::new(250, 1);
    let sources2 = build_sources(&network2, 40);
    let q_bn = QUERY.replace("amazon books.book", "bn books.book");
    let plan_bn = translate(&parse_query(&q_bn).unwrap()).unwrap();
    let amazon_engine = Engine::new(plan.clone(), &sources2).unwrap();
    let bn_engine = Engine::new(plan_bn, &sources2).unwrap();

    let mut upper = SourceRegistry::new();
    upper.add_navigator("amazonView", amazon_engine);
    upper.add_navigator("bnView", bn_engine);
    let union_q = parse_query(
        "CONSTRUCT <all> $O {$O} </all> {} WHERE amazonView allbooks.offer $O",
    )
    .unwrap();
    // Integrate both stores' offers under one root.
    let union_q2 = parse_query(
        "CONSTRUCT <all> $O {$O} </all> {} WHERE bnView allbooks.offer $O",
    )
    .unwrap();
    let top_a = Engine::new(translate(&union_q).unwrap(), &upper).unwrap();
    let top_b = Engine::new(translate(&union_q2).unwrap(), &upper).unwrap();
    let mut a_nav = top_a;
    let mut b_nav = top_b;
    let a_tree = materialize(&mut a_nav);
    let b_tree = materialize(&mut b_nav);
    println!(
        "\nstacked mediators: amazon view has {} offers, bn view has {} offers",
        a_tree.children().len(),
        b_tree.children().len()
    );
}
