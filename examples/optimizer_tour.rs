//! A tour of the plan-level machinery: translation, rewriting,
//! composition, intermediate eager steps, and the browsability classifier
//! — the §3 *preprocessing/rewriting* phases end to end.
//!
//! Run with: `cargo run --example optimizer_tour`

use mix::algebra::rewrite::{insert_eager_steps, rewrite};
use mix::algebra::{compose, PlanNode};
use mix::prelude::*;
use mix::wrappers::gen;
use mix::xmas::Var;

fn main() {
    // ---- 1. translation (Fig. 4) ---------------------------------------
    let view_text = "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {} \
                     WHERE homesSrc homes.home $H AND $H zip._ $V1 \
                       AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2";
    let view = translate(&parse_query(view_text).unwrap()).unwrap();
    println!("== the Figure 4 view plan ==\n{view}");

    // ---- 2. rewriting on a join query -----------------------------------
    // The price filter is written after the join condition, so the initial
    // plan evaluates it above the join; rewriting pushes the
    // getDescendants and the select into the homes branch.
    let join_text = "CONSTRUCT <out> <m> $H $S {$S} </m> {$H} </out> {} \
                     WHERE homesSrc homes.home $H AND $H zip._ $V1 \
                       AND schoolsSrc schools.school $S AND $S zip._ $V2 \
                       AND $V1 = $V2 AND $H price._ $P AND $P < 400000";
    let initial = translate(&parse_query(join_text).unwrap()).unwrap();
    let mut pushed = initial.clone();
    let jstats = rewrite(&mut pushed, NcCapabilities::minimal());
    println!(
        "== rewriting the filtered join ==\nrewrites: {} select pushdowns, \
         {} getDescendants pushdowns, {} cross→join, {} swaps",
        jstats.select_pushdowns, jstats.gd_pushdowns, jstats.cross_to_join, jstats.join_swaps
    );
    let mk_small = || {
        let mut reg = SourceRegistry::new();
        reg.add_tree("homesSrc", &gen::homes_doc(17, 300, 30));
        reg.add_tree("schoolsSrc", &gen::schools_doc(18, 300, 30));
        reg
    };
    let cost = |plan: &Plan| {
        let mut e = Engine::new(plan.clone(), &mk_small()).unwrap();
        materialize(&mut e);
        e.stats().total().total()
    };
    println!(
        "full-navigation cost: initial {}, rewritten {}\n",
        cost(&initial),
        cost(&pushed)
    );

    // ---- 3. composition (q' ∘ q) ----------------------------------------
    let query_text = "CONSTRUCT <cheap_zips> $Z {$Z} </cheap_zips> {} \
                      WHERE medview answer.med_home.home $HH AND $HH zip._ $Z \
                        AND $HH price._ $P AND $P < 500000";
    let query = translate(&parse_query(query_text).unwrap()).unwrap();
    let composed = compose(&query, "medview", &view).expect("composition");
    println!("== composed q' ∘ q: {} operators, sources {:?} ==",
        composed.reachable().len(), composed.source_names());
    let optimized = composed.clone();

    // ---- 4. browsability + execution ------------------------------------
    let report = classify(&composed, NcCapabilities::minimal());
    println!("composed plan browsability: {}", report.overall);

    let mk = || {
        let mut reg = SourceRegistry::new();
        reg.add_tree("homesSrc", &gen::homes_doc(17, 400, 40));
        reg.add_tree("schoolsSrc", &gen::schools_doc(18, 400, 40));
        reg
    };
    let measure = |plan: &Plan| -> (u64, mix::xml::Tree) {
        let mut e = Engine::new(plan.clone(), &mk()).unwrap();
        let t = materialize(&mut e);
        (e.stats().total().total(), t)
    };
    let (navs_composed, _answer) = measure(&composed);
    println!("composed plan, full navigation: {navs_composed} source commands");

    // ---- 5. intermediate eager steps (§6) --------------------------------
    // Sort the answer zips: the orderBy makes the plan unbrowsable; an
    // eager step confines the damage to one materialization.
    let mut sorted = optimized.clone();
    let target = sorted
        .reachable()
        .into_iter()
        .find(|&id| matches!(sorted.node(id), PlanNode::GroupBy { .. }))
        .unwrap();
    let PlanNode::GroupBy { input, group, items } = sorted.node(target).clone() else {
        unreachable!()
    };
    let ob = sorted.add(PlanNode::OrderBy { input, keys: vec![Var::new("Z")] });
    *sorted.node_mut(target) = PlanNode::GroupBy { input: ob, group, items };
    sorted.validate().unwrap();
    let inserted = insert_eager_steps(&mut sorted);
    println!("\nadded orderBy $Z; inserted {inserted} intermediate eager step(s)");
    let (navs_sorted, answer_sorted) = measure(&sorted);
    println!(
        "sorted answer: {} zips, first three: {:?} (cost {navs_sorted} navs)",
        answer_sorted.children().len(),
        answer_sorted
            .children()
            .iter()
            .take(3)
            .map(mix::xml::Tree::text)
            .collect::<Vec<_>>()
    );
    assert!(answer_sorted
        .children()
        .windows(2)
        .all(|w| w[0].text() <= w[1].text()));
}
