//! Quickstart: the paper's running example (Figures 3 & 4) end to end.
//!
//! Parses the XMAS "homes with local schools" query, translates it into an
//! algebra plan, wires the plan to two sources, and navigates the virtual
//! answer — printing how few source navigations each step costs.
//!
//! Run with: `cargo run --example quickstart`

use mix::prelude::*;

fn main() {
    // The two sources of the running example (Example 8's data).
    let mut sources = SourceRegistry::new();
    sources.add_term(
        "homesSrc",
        "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]",
    );
    sources.add_term(
        "schoolsSrc",
        "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],\
         school[dir[Hart],zip[91223]]]",
    );

    // Figure 3, verbatim (% comments included).
    let query_text = r#"
CONSTRUCT <answer>
            <med_home> $H               % ... med_home elements followed by
              $S {$S}                   % ... school elements (one for each $S)
            </med_home> {$H}            % (one med_home element for each $H)
          </answer> {}                  % create one answer element
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2                         % join on the zip code
"#;
    let query = parse_query(query_text).expect("Figure 3 parses");
    println!("XMAS query:\n{query_text}");

    let plan = translate(&query).expect("Figure 4 translation");
    println!("Algebra plan (Figure 4):\n{plan}");

    let report = classify(&plan, NcCapabilities::with_select());
    println!("Browsability: {}\n", report.overall);

    // Wire up the engine. No source access happens here: the client gets
    // the virtual root for free.
    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());
    let root = doc.root();
    println!("root handle obtained — source navigations so far: {}", doc.stats().total());

    println!("root label: {}", root.label());

    // Navigate into the first med_home only.
    let first = root.down().expect("at least one med_home");
    let home = first.down().expect("the home");
    println!(
        "first result: {} in zip {}",
        home.child("addr").map(|a| a.text()).unwrap_or_default(),
        home.child("zip").map(|z| z.text()).unwrap_or_default(),
    );
    let after_first = doc.stats().total();
    println!("source navigations after first result: {after_first}");

    // Its schools:
    for school in first.children().skip(1) {
        println!("  school dir: {}", school.child("dir").map(|d| d.text()).unwrap_or_default());
    }

    // Now pull the whole answer and compare the cost.
    let full = root.to_tree();
    println!("\nfull answer:\n{}", mix::xml::xmlio::to_xml_pretty(&full));
    println!("source navigations after full materialization: {}", doc.stats().total());
    for (name, stats) in &doc.stats().per_source {
        println!("  {name}: {stats}");
    }
}
