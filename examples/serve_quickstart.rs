//! Serving quickstart: the mediated view over the wire.
//!
//! Starts a `VxdServer` on a loopback TCP socket with the paper's
//! running-example sources, opens two multiplexed sessions on one
//! connection, and navigates the virtual answer remotely — including a
//! degraded-fetch check (a remote client can tell "empty label" from
//! "sources down") and a clean teardown.
//!
//! Run with: `cargo run --example serve_quickstart`

use mix::prelude::*;
use mix::serve::FetchOutcome;
use mix::xml::term::parse_term;
use std::net::TcpStream;

fn main() {
    // Sessions share one wrapper connection per source, one fragment
    // cache, and one metrics registry; everything navigational (engine,
    // buffers, handle table) is private per session.
    let mut pool = SessionSources::new(FragmentCache::new(), MetricsRegistry::enabled());
    pool.add_tree(
        "homesSrc",
        &parse_term(
            "homes[home[addr[La Jolla],zip[91220]],home[addr[El Cajon],zip[91223]]]",
        )
        .unwrap(),
        FillPolicy::NodeAtATime,
    );
    pool.add_tree(
        "schoolsSrc",
        &parse_term(
            "schools[school[dir[Smith],zip[91220]],school[dir[Bar],zip[91220]],\
             school[dir[Hart],zip[91223]]]",
        )
        .unwrap(),
        FillPolicy::NodeAtATime,
    );

    // Query templates are parsed and translated once, at registration;
    // each Open instantiates the plan as a fresh per-session engine.
    let mut server = VxdServer::new(pool);
    server
        .add_template(
            "med_homes",
            "CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
             WHERE homesSrc homes.home $H AND $H zip._ $V1
               AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2",
        )
        .expect("Figure 3 parses and translates");

    let handle = server.serve_tcp("127.0.0.1:0").expect("bind loopback");
    println!("serving DOM-VXD on {}", handle.local_addr());

    // One connection, two interleaved sessions: every request frame
    // carries its session id, so a single socket multiplexes them.
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut client = VxdClient::new(stream);

    let a = client.open("med_homes").expect("session a");
    let b = client.open("med_homes").expect("session b");
    println!("opened sessions {} and {} on one connection", a.session, b.session);

    // Session a walks the first med_home; session b independently reads
    // the root label — handles are private per session.
    let first = client.down(a.session, a.root).expect("down").expect("a med_home");
    println!("root label (session b): {}", client.fetch(b.session, b.root).unwrap());

    let mut child = client.down(a.session, first).expect("down");
    while let Some(node) = child {
        // fetch_checked preserves the engine's degraded-vs-empty
        // distinction across the wire.
        match client.fetch_checked(a.session, node).expect("fetch") {
            FetchOutcome::Complete(label) => println!("  session a sees: {label}"),
            FetchOutcome::Degraded { label, sources } => {
                println!("  partial answer {label}; sources down: {sources:?}")
            }
        }
        child = client.right(a.session, node).expect("right");
    }

    client.close(a.session).expect("close a");
    client.close(b.session).expect("close b");
    println!("sessions closed; server still up: {} live sessions", server.session_count());

    handle.shutdown();
    println!("server shut down cleanly");
}
