//! Mediating a relational database (paper §4, Example 5, Figure 6).
//!
//! A XMAS query runs against an in-memory RDBMS exposed through the
//! relational LXP wrapper: the wrapper ships `n` complete tuples per fill
//! (hole ids `db.table.row`), the buffer component absorbs the granularity
//! mismatch, and the lazy mediator on top pulls only the chunks the client
//! navigation demands.
//!
//! Run with: `cargo run --example relational_mediation`

use mix::prelude::*;
use mix::wrappers::gen::homes_database;
use mix::wrappers::RelationalWrapper;

fn main() {
    let rows = 5_000;
    let chunk = 100; // "a relational source may return chunks of 100 tuples at a time" (§4)

    // The substrate: realestate.homes(addr, zip, price).
    let db = homes_database(7, rows, 50);
    println!(
        "database `{}`: table homes with {} rows",
        db.name(),
        db.table("homes").unwrap().len()
    );

    // Wrapper + buffer + registry.
    let wrapper = RelationalWrapper::new(db, chunk);
    let buffered = BufferNavigator::new(wrapper, "realestate");
    let buffer_stats = buffered.stats();
    let mut sources = SourceRegistry::new();
    sources.add_navigator("realestate", buffered);

    // Cheap homes in one zip range — note the view shape of Figure 6:
    // realestate[homes[row[addr[…],zip[…],price[…]], …]].
    let query = parse_query(
        r#"CONSTRUCT <cheap_homes> $R {$R} </cheap_homes> {}
           WHERE realestate realestate.homes.row $R
             AND $R price._ $P AND $P < 300000"#,
    )
    .unwrap();
    let plan = translate(&query).unwrap();
    println!("\nplan:\n{plan}");

    let doc = VirtualDocument::new(Engine::new(plan, &sources).unwrap());
    let root = doc.root();

    // Browse the first five hits.
    println!("first 5 cheap homes:");
    let mut cur = root.down();
    let mut n = 0;
    while let Some(hit) = cur {
        if n == 5 {
            break;
        }
        let t = hit.to_tree();
        println!(
            "  {} at {}",
            t.child("addr").map(Tree::text).unwrap_or_default(),
            t.child("price").map(Tree::text).unwrap_or_default()
        );
        n += 1;
        cur = hit.right();
    }

    let snap = buffer_stats.snapshot();
    println!(
        "\nwrapper traffic so far: {} fills, {} nodes, ~{} bytes",
        snap.fills, snap.nodes_received, snap.bytes_received
    );
    println!(
        "rows materialized in the buffer: ≤ {} of {} (chunked pulls only as far as navigated)",
        snap.fills.saturating_sub(1) * chunk as u64,
        rows
    );

    // Navigating tuple attributes is free — tuples arrive complete.
    let first = root.down().unwrap();
    let before = buffer_stats.snapshot().fills;
    let _ = first.to_tree();
    assert_eq!(buffer_stats.snapshot().fills, before);
    println!("attribute navigation inside buffered tuples costs zero fills ✓");
}
